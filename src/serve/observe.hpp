// Deterministic serve-layer observability: per-request lifecycle event
// log, per-replica cycle-accounting breakdown, and byte-stable exporters
// (Chrome/Perfetto trace-event JSON + Prometheus text exposition).
//
// The Observer is a nullable hook (detail::FleetShared::observer, the same
// pattern as the autoscaler's ttft_window): when absent, the engine room
// never touches it and a run's event sequence — and therefore every byte
// of its output — is identical to an unobserved binary. When attached, all
// recording is pure bookkeeping on the simulated clock: no engine events,
// no wall clock, no allocation that feeds back into scheduling, so an
// observed run produces the *same* FleetMetrics as an unobserved one
// (pinned in tests/test_observe.cpp).
//
// Cycle accounting: each replica's timeline [0, makespan] is partitioned
// into the categories below. Iterations contribute their pipeline
// placement exactly (decode group, prefill chunks by kind, host overhead +
// PCIe sync); scheduler waits are classified at sleep time; whatever
// trails the replica's last activity is "drain". finalize() asserts the
// tiling identity — per replica, the category totals sum to the makespan
// exactly, no gaps, no overlaps (the serve-layer analog of the paper's
// Fig. 5 span accounting in sim::Trace).
//
// Determinism rules (DESIGN.md §7): exports are keyed off simulated cycles
// only — every timestamp is an integer cycle count and every millisecond
// figure is derived by integer cycle→microsecond arithmetic, so the
// emitted bytes are identical across compilers, build modes and re-runs.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace looplynx::serve {

/// The lifecycle event vocabulary. Request-scoped events carry the request
/// id; fleet-scoped events (scale decisions, replica drains) carry
/// kNoRequest and the affected replica index.
enum class LifecycleEvent : std::uint8_t {
  kRoute,          // balancer picked a replica (a = live replicas)
  kArrive,         // request_proc started (a = prefill, b = decode shape)
  kAdmit,          // popped from the queue, KV reserved (a = active after)
  kReject,         // shed (a = 0 queue-full, 1 oversized-for-KV-budget)
  kFirstChunk,     // first prefill chunk executed (a = tokens, b = cursor)
  kChunk,          // subsequent prefill chunk (a = tokens, b = cursor)
  kFirstToken,     // token #1 host-visible (TTFT instant)
  kDecode,         // decode token host-visible (a = tokens so far)
  kPreempt,        // KV dropped (a = tokens dropped, b = preempt count)
  kRecomputeStart, // first re-prefill chunk of a recovery (a = target)
  kRecomputeEnd,   // recovery complete, KV rebuilt (a = recomputed tokens)
  kFinish,         // all decode tokens produced (a = decoded, b = preempts)
  kScaleUp,        // autoscaler activated a replica (a = from, b = to)
  kScaleDown,      // autoscaler deactivated a replica (a = from, b = to)
  kDrain,          // deactivated replica begins draining admitted work
  kCacheHit,       // prefix-cache admission hit (a = tokens, b = blocks)
  kCacheMiss,      // prefix-cache admission found nothing cached
  kKvMigrate,      // KV blocks landed from a prefill replica (a = blocks,
                   // b = source replica); recorded on the receiving replica
  kSteal,          // queued request stolen by an idle replica (a = source
                   // replica); recorded on the thief at delivery
};

/// Stable CLI/export-facing event names ("route", "first-token", ...).
const char* lifecycle_event_name(LifecycleEvent kind);

/// `request` value of fleet-scoped events (scale / drain).
inline constexpr std::uint32_t kNoRequest = 0xffffffffu;

struct ObservedEvent {
  sim::Cycles at = 0;
  LifecycleEvent kind = LifecycleEvent::kArrive;
  std::uint32_t request = kNoRequest;  // fleet-wide id (== injection order)
  std::uint32_t replica = 0;
  std::uint32_t a = 0;  // kind-specific payload, see LifecycleEvent
  std::uint32_t b = 0;
};

/// Cycle-accounting categories. Together they tile each replica's
/// [0, makespan] timeline exactly (asserted by finalize()).
namespace category {
inline constexpr char kPrefill[] = "prefill";          // whole-prompt chunk
inline constexpr char kChunkedPrefill[] = "chunked-prefill";  // partial chunk
inline constexpr char kDecode[] = "decode";            // decode group pass
inline constexpr char kRecompute[] = "recompute";      // post-preempt rebuild
inline constexpr char kHostSync[] = "host-sync";       // overhead + PCIe sync
inline constexpr char kKvStall[] = "kv-stall";  // idle w/ queued, unadmittable
inline constexpr char kKvSwap[] = "kv-swap";  // cache block DMA to/from host
inline constexpr char kKvMigrate[] = "kv-migrate";  // migrated-KV ingest DMA
inline constexpr char kSchedulerIdle[] = "scheduler-idle";  // idle, no work
inline constexpr char kDrain[] = "drain";  // trailing idle until run end
}  // namespace category

/// Every category in canonical (lexicographic) order — the exporters'
/// iteration order, so metric line sets are stable across runs.
inline constexpr const char* kCategories[] = {
    category::kChunkedPrefill, category::kDecode,    category::kDrain,
    category::kHostSync,       category::kKvMigrate, category::kKvStall,
    category::kKvSwap,         category::kPrefill,   category::kRecompute,
    category::kSchedulerIdle,
};

/// One run's observability state. Construct with the run's replica pool
/// width and clock, attach via ServingSim::run(&obs) / FleetSim::run(&obs)
/// (or host::Host::flush_observed), then export. Single-use: finalize()
/// runs once, after which the event log and breakdowns are frozen.
class Observer {
 public:
  Observer(std::uint32_t replicas, double frequency_hz);

  std::uint32_t replicas() const {
    return static_cast<std::uint32_t>(per_replica_.size());
  }
  double frequency_hz() const { return frequency_hz_; }

  /// Tags each replica with its role name ("prefill"/"decode"/...), one
  /// per replica. FleetSim::run calls this on disaggregated fleets; the
  /// trace's process names and scale/drain instants then carry the role
  /// and the Prometheus scale counters grow a role label, so exports say
  /// WHICH tier a scale event moved. Never called on symmetric fleets —
  /// their export bytes stay identical to pre-role builds.
  void set_role_names(std::vector<std::string> names);
  const std::vector<std::string>& role_names() const { return role_names_; }

  // ---- Recording hooks (engine room only; all O(1) bookkeeping) ----
  void record(LifecycleEvent kind, sim::Cycles at, std::uint32_t request,
              std::uint32_t replica, std::uint32_t a = 0, std::uint32_t b = 0);
  /// Attributes [begin, end) of `replica`'s timeline to `category`.
  void add_span(std::uint32_t replica, const char* cat, sim::Cycles begin,
                sim::Cycles end);
  /// The replica's scheduler parks on its work signal; the span is closed
  /// by end_wait() — or, if the wake never comes, by finalize() as drain.
  void begin_wait(std::uint32_t replica, const char* cat, sim::Cycles at);
  void end_wait(std::uint32_t replica, sim::Cycles at);
  /// The replica's scheduler loop exited; [at, makespan] becomes drain.
  void mark_exit(std::uint32_t replica, sim::Cycles at);
  /// End-of-run KV gauges (finalize_metrics feeds these).
  void set_kv_stats(std::uint32_t replica, std::uint64_t capacity_blocks,
                    std::uint64_t peak_used_blocks,
                    std::uint32_t block_tokens);

  /// Closes open waits and post-exit tails as drain, then asserts the
  /// tiling identity: per replica, the category totals sum to `makespan`
  /// exactly. Throws std::logic_error on violation or double finalize.
  void finalize(sim::Cycles makespan);
  bool finalized() const { return finalized_; }
  sim::Cycles makespan() const { return makespan_; }

  // ---- Inspection (tests and the host-layer breakdown exposure) ----
  const std::vector<ObservedEvent>& events() const { return events_; }
  const sim::Trace& replica_trace(std::uint32_t replica) const;
  /// Category → cycles for one replica (missing categories are 0 cycles
  /// and omitted here; the exporters emit them explicitly).
  const std::map<std::string, sim::Cycles>& breakdown(
      std::uint32_t replica) const;

  // ---- Exporters (byte-stable; require finalize()) ----
  /// Chrome/Perfetto trace-event JSON: one process track per replica
  /// carrying the cycle-accounting spans, one async span per request with
  /// lifecycle instants, and instant events for preempt/scale/drain
  /// decisions. Timestamps are raw cycles (1 trace-µs == 1 cycle).
  void write_chrome_trace(std::ostream& os) const;
  /// Prometheus text exposition: counters (admissions, rejections,
  /// preemptions, tokens, scale events), gauges (KV block capacity/peak),
  /// per-replica-per-category cycle counters, and TTFT / e2e / queue-wait
  /// histograms over fixed millisecond bucket bounds.
  void write_prometheus(std::ostream& os) const;

 private:
  struct PerReplica {
    sim::Trace trace{/*keep_spans=*/true};
    bool waiting = false;
    sim::Cycles wait_start = 0;
    std::string wait_category;
    bool exited = false;
    sim::Cycles exit_at = 0;
    std::uint64_t kv_capacity_blocks = 0;
    std::uint64_t kv_peak_used_blocks = 0;
    std::uint32_t kv_block_tokens = 0;
  };

  void require_finalized(const char* what) const;
  /// Integer microseconds of a cycle count at the run clock (exact integer
  /// arithmetic — the exporters' only unit conversion).
  std::uint64_t cycles_to_us(sim::Cycles c) const;

  double frequency_hz_;
  std::uint64_t frequency_hz_int_;
  std::vector<PerReplica> per_replica_;
  std::vector<std::string> role_names_;  // empty unless disaggregated
  std::vector<ObservedEvent> events_;
  bool finalized_ = false;
  sim::Cycles makespan_ = 0;
};

/// Writes the finalized observer's exports to files; an empty path skips
/// that exporter. Throws std::runtime_error when a file cannot be written.
void write_exports(const Observer& observer, const std::string& trace_path,
                   const std::string& metrics_path);

}  // namespace looplynx::serve
