#!/usr/bin/env python3
"""Docs gate: keep README/DESIGN/ROADMAP and the serving CLI in sync.

Three checks, run by CI's `docs` job (and runnable locally):

1. Link check — every relative markdown link in README.md / DESIGN.md /
   ROADMAP.md must point at a file that exists in the repo. External
   links (http/https/mailto), pure anchors, and paths that escape the
   repo root (the GitHub-web CI badge) are skipped.

2. Flag drift — every `--flag` printed by the serving binaries' --help
   (HELP_BINARIES: serve_load, continuous_batching, fleet_serving,
   autoscale_serving, chat_cache) must appear in README.md, so the flag
   reference table cannot silently fall behind the real CLI.

3. Snippet smoke — every `./build/...` command quoted in README.md's
   fenced ```sh blocks is re-run and must exit 0, so quoted commands
   cannot drift from the current CLI. serve_load invocations get
   `--requests=16` appended (the Cli parser's last-one-wins rule) to keep
   the smoke fast without weakening the flag parsing under test.

Usage: tools/check_docs.py [--build-dir build] [--skip-run]
"""

import argparse
import os
import re
import shlex
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = ["README.md", "DESIGN.md", "ROADMAP.md"]
HELP_BINARIES = ["serve_load", "continuous_batching", "fleet_serving",
                 "autoscale_serving", "chat_cache"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def fail(errors):
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(f"{len(errors)} docs check(s) failed", file=sys.stderr)
    sys.exit(1)


def check_links():
    errors = []
    for doc in DOCS:
        text = open(os.path.join(REPO, doc), encoding="utf-8").read()
        for target in LINK_RE.findall(text):
            if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = os.path.normpath(os.path.join(REPO, path))
            if not resolved.startswith(REPO + os.sep):
                continue  # escapes the repo (GitHub-web paths like ../../actions)
            if not os.path.exists(resolved):
                errors.append(f"{doc}: broken relative link -> {target}")
    return errors


def check_flag_drift(build_dir):
    errors = []
    readme = open(os.path.join(REPO, "README.md"), encoding="utf-8").read()
    for binary in HELP_BINARIES:
        exe = os.path.join(build_dir, binary)
        if not os.path.exists(exe):
            errors.append(f"flag drift: {exe} not built (build it first)")
            continue
        proc = subprocess.run([exe, "--help"], capture_output=True, text=True,
                              timeout=60)
        if proc.returncode != 0:
            errors.append(f"flag drift: {binary} --help exited "
                          f"{proc.returncode}")
            continue
        flags = sorted(set(FLAG_RE.findall(proc.stdout)))
        if not flags:
            errors.append(f"flag drift: {binary} --help printed no flags")
        for flag in flags:
            if flag not in readme:
                errors.append(f"flag drift: {binary} --help lists {flag} "
                              "but README.md never mentions it")
    return errors


def quoted_commands():
    """`./build/...` lines from README's ```sh blocks, continuations joined."""
    commands = []
    in_sh = False
    pending = ""
    for line in open(os.path.join(REPO, "README.md"), encoding="utf-8"):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_sh = stripped == "```sh"
            continue
        if not in_sh:
            continue
        pending += stripped.split("#", 1)[0].strip()
        if pending.endswith("\\"):
            pending = pending[:-1] + " "
            continue
        if pending.startswith("./build/"):
            commands.append(pending)
        pending = ""
    return commands


def check_snippets(build_dir):
    errors = []
    commands = quoted_commands()
    if not commands:
        return ["snippet smoke: README.md quotes no ./build/ commands "
                "(extraction broke?)"]
    for command in commands:
        args = shlex.split(command)
        args[0] = os.path.join(build_dir, os.path.relpath(args[0], "./build"))
        if os.path.basename(args[0]) == "serve_load":
            args.append("--requests=16")
        print(f"run: {' '.join(args)}")
        try:
            proc = subprocess.run(args, cwd=REPO, capture_output=True,
                                  text=True, timeout=300)
        except (OSError, subprocess.TimeoutExpired) as e:
            errors.append(f"snippet smoke: `{command}` failed to run: {e}")
            continue
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-3:]
            errors.append(f"snippet smoke: `{command}` exited "
                          f"{proc.returncode}: {' / '.join(tail)}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="directory with the built binaries")
    parser.add_argument("--skip-run", action="store_true",
                        help="only check links and flag drift, do not run "
                             "the quoted commands")
    opts = parser.parse_args()
    build_dir = os.path.abspath(os.path.join(REPO, opts.build_dir)) \
        if not os.path.isabs(opts.build_dir) else opts.build_dir

    errors = check_links()
    errors += check_flag_drift(build_dir)
    if not opts.skip_run:
        errors += check_snippets(build_dir)
    if errors:
        fail(errors)
    print("docs checks passed (links, flag drift"
          + (", snippets)" if not opts.skip_run else ")"))


if __name__ == "__main__":
    main()
