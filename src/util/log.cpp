#include "util/log.hpp"

namespace looplynx::util {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level, std::string_view component)
    : enabled_(level >= global_log_level() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    stream_ << '[' << log_level_name(level_) << ']';
    if (!component.empty()) stream_ << '[' << component << ']';
    stream_ << ' ';
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
}

}  // namespace detail

}  // namespace looplynx::util
