// Binary serialization of model weights (checkpoint save/load).
//
// Format "LLYX" v1: little-endian header (magic, version, ModelConfig
// fields) followed by raw fp32 tensor payloads in a fixed order. The loader
// validates magic/version/shape so corrupted or mismatched files fail
// loudly instead of producing garbage inferences.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "model/weights.hpp"

namespace looplynx::model {

class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes a checkpoint to a stream / file.
void save_weights(const Gpt2Weights& weights, std::ostream& os);
void save_weights_file(const Gpt2Weights& weights, const std::string& path);

/// Reads a checkpoint; throws SerializationError on malformed input.
Gpt2Weights load_weights(std::istream& is);
Gpt2Weights load_weights_file(const std::string& path);

}  // namespace looplynx::model
