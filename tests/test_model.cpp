// Tests for the fp32 GPT-2 reference substrate: ops, weights, KV cache and
// end-to-end autoregressive behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "model/config.hpp"
#include "model/gpt2_ref.hpp"
#include "model/kv_cache.hpp"
#include "model/ops.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"

namespace looplynx::model {
namespace {

TEST(ConfigTest, Gpt2MediumIs345M) {
  const ModelConfig cfg = gpt2_medium();
  // 345M-class: embeddings + 24 layers of d=1024.
  EXPECT_NEAR(static_cast<double>(cfg.param_count()), 355e6, 10e6);
  EXPECT_EQ(cfg.head_dim(), 64u);
}

TEST(ConfigTest, WeightBytesPerTokenInt8) {
  const ModelConfig cfg = gpt2_medium();
  // Per layer: qkv (3d*d) + proj (d*d) + fc1/fc2 (2*d*d_ff) = 12.58 MB int8.
  const std::uint64_t expected_per_layer =
      3ULL * 1024 * 1024 + 1024ULL * 1024 + 2ULL * 1024 * 4096;
  EXPECT_EQ(cfg.weight_bytes_per_token(1), 24ULL * expected_per_layer);
  EXPECT_EQ(cfg.weight_bytes_per_token(2), 48ULL * expected_per_layer);
}

TEST(ConfigTest, ValidateRejectsBadHeadSplit) {
  ModelConfig cfg = tiny_config();
  cfg.n_head = 5;  // 32 % 5 != 0
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TensorTest, ShapeAndAccess) {
  Tensor t(3, 4, 1.5f);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  t.at(2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t.row(2)[3], 7.0f);
  EXPECT_FLOAT_EQ(t[11], 7.0f);
  t.fill(0.0f);
  EXPECT_FLOAT_EQ(t.at(2, 3), 0.0f);
}

TEST(OpsTest, LinearMatchesManualComputation) {
  Tensor w(2, 3);
  // w = [[1,2,3],[4,5,6]]
  for (int i = 0; i < 6; ++i) w[i] = static_cast<float>(i + 1);
  const std::vector<float> x{1.0f, 0.5f, -1.0f};
  const std::vector<float> b{10.0f, 20.0f};
  std::vector<float> y(2);
  linear(w, b, x, y);
  EXPECT_FLOAT_EQ(y[0], 10.0f + 1.0f + 1.0f - 3.0f);
  EXPECT_FLOAT_EQ(y[1], 20.0f + 4.0f + 2.5f - 6.0f);
}

TEST(OpsTest, LayerNormProducesZeroMeanUnitVar) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f};
  const std::vector<float> gain(x.size(), 1.0f), bias(x.size(), 0.0f);
  layer_norm(x, gain, bias);
  double mean = std::accumulate(x.begin(), x.end(), 0.0) /
                static_cast<double>(x.size());
  double var = 0;
  for (float v : x) var += (v - mean) * (v - mean);
  var /= static_cast<double>(x.size());
  EXPECT_NEAR(mean, 0.0, 1e-6);
  EXPECT_NEAR(var, 1.0, 1e-4);
}

TEST(OpsTest, LayerNormAppliesGainAndBias) {
  std::vector<float> x{-1.0f, 1.0f};
  const std::vector<float> gain{2.0f, 2.0f}, bias{5.0f, 5.0f};
  layer_norm(x, gain, bias);
  EXPECT_NEAR(x[0], 5.0f - 2.0f, 1e-4);
  EXPECT_NEAR(x[1], 5.0f + 2.0f, 1e-4);
}

TEST(OpsTest, SoftmaxSumsToOneAndOrders) {
  std::vector<float> x{1.0f, 3.0f, 2.0f};
  softmax(x);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-6);
  EXPECT_GT(x[1], x[2]);
  EXPECT_GT(x[2], x[0]);
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  std::vector<float> a{1000.0f, 1001.0f, 1002.0f};
  std::vector<float> b{0.0f, 1.0f, 2.0f};
  softmax(a);
  softmax(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(OpsTest, GeluMatchesKnownValues) {
  std::vector<float> x{0.0f, 1.0f, -1.0f, 3.0f};
  gelu(x);
  EXPECT_NEAR(x[0], 0.0f, 1e-6);
  EXPECT_NEAR(x[1], 0.8412f, 1e-3);
  EXPECT_NEAR(x[2], -0.1588f, 1e-3);
  EXPECT_NEAR(x[3], 2.9964f, 1e-3);
}

TEST(WeightsTest, RandomInitIsDeterministic) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights a = Gpt2Weights::random(cfg, 7);
  const Gpt2Weights b = Gpt2Weights::random(cfg, 7);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.wte.size(); ++i) {
    ASSERT_FLOAT_EQ(a.wte[i], b.wte[i]);
  }
  for (std::size_t i = 0; i < a.blocks[0].w_qkv.size(); ++i) {
    ASSERT_FLOAT_EQ(a.blocks[0].w_qkv[i], b.blocks[0].w_qkv[i]);
  }
}

TEST(WeightsTest, DifferentSeedsDiffer) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights a = Gpt2Weights::random(cfg, 1);
  const Gpt2Weights b = Gpt2Weights::random(cfg, 2);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i) same += (a.wte[i] == b.wte[i]);
  EXPECT_LT(same, 5);
}

TEST(WeightsTest, ShapesMatchConfig) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights w = Gpt2Weights::random(cfg, 3);
  EXPECT_EQ(w.wte.rows(), cfg.vocab_size);
  EXPECT_EQ(w.wte.cols(), cfg.d_model);
  ASSERT_EQ(w.blocks.size(), cfg.n_layer);
  EXPECT_EQ(w.blocks[0].w_qkv.rows(), 3u * cfg.d_model);
  EXPECT_EQ(w.blocks[0].w_fc1.rows(), cfg.d_ff);
  EXPECT_EQ(w.blocks[0].w_fc2.cols(), cfg.d_ff);
}

TEST(KvCacheTest, AppendAdvanceRead) {
  const ModelConfig cfg = tiny_config();
  KvCache cache(cfg);
  const std::uint32_t hd = cfg.head_dim();
  std::vector<float> k(hd, 1.0f), v(hd, 2.0f);
  cache.append(0, 0, k, v);
  EXPECT_EQ(cache.seq_len(), 0u);  // not visible until advance
  cache.advance();
  EXPECT_EQ(cache.seq_len(), 1u);
  EXPECT_FLOAT_EQ(cache.key(0, 0, 0)[0], 1.0f);
  EXPECT_FLOAT_EQ(cache.value(0, 0, 0)[0], 2.0f);
}

TEST(KvCacheTest, HeadPartitionOwnsOnlyItsSlice) {
  const ModelConfig cfg = tiny_config();  // 4 heads
  KvCache part(cfg, /*first_head=*/2, /*num_heads=*/2);
  EXPECT_FALSE(part.owns_head(0));
  EXPECT_FALSE(part.owns_head(1));
  EXPECT_TRUE(part.owns_head(2));
  EXPECT_TRUE(part.owns_head(3));
  // Partition holds half the bytes of the full cache.
  KvCache full(cfg);
  EXPECT_EQ(part.bytes_resident() * 2, full.bytes_resident());
}

TEST(KvCacheTest, Int8VariantStoresBytes) {
  const ModelConfig cfg = tiny_config();
  KvCache8 cache(cfg);
  std::vector<std::int8_t> k(cfg.head_dim(), -7), v(cfg.head_dim(), 42);
  cache.append(0, 1, k, v);
  cache.advance();
  EXPECT_EQ(cache.key(0, 1, 0)[0], -7);
  EXPECT_EQ(cache.value(0, 1, 0)[0], 42);
}

TEST(Gpt2ReferenceTest, ForwardTokenAdvancesPosition) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights w = Gpt2Weights::random(cfg, 11);
  Gpt2Reference ref(w);
  EXPECT_EQ(ref.position(), 0u);
  const auto h = ref.forward_token(5);
  EXPECT_EQ(ref.position(), 1u);
  EXPECT_EQ(h.size(), cfg.d_model);
}

TEST(Gpt2ReferenceTest, DeterministicAcrossInstances) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights w = Gpt2Weights::random(cfg, 13);
  Gpt2Reference a(w), b(w);
  const std::vector<std::uint32_t> prompt{1, 2, 3, 4};
  const auto ga = a.generate(prompt, 8);
  const auto gb = b.generate(prompt, 8);
  EXPECT_EQ(ga, gb);
}

TEST(Gpt2ReferenceTest, OutputDependsOnPrompt) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights w = Gpt2Weights::random(cfg, 13);
  Gpt2Reference a(w), b(w);
  const auto ga = a.generate(std::vector<std::uint32_t>{1, 2, 3}, 6);
  const auto gb = b.generate(std::vector<std::uint32_t>{4, 5, 6}, 6);
  EXPECT_NE(ga, gb);
}

TEST(Gpt2ReferenceTest, GeneratedTokensAreInVocab) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights w = Gpt2Weights::random(cfg, 17);
  Gpt2Reference ref(w);
  const auto out = ref.generate(std::vector<std::uint32_t>{9, 8, 7}, 10);
  ASSERT_EQ(out.size(), 10u);
  for (auto t : out) EXPECT_LT(t, cfg.vocab_size);
}

// KV-cache equivalence: processing tokens incrementally with the cache must
// give the same final hidden state as replaying the same tokens into a fresh
// model (the cache only memoizes, never changes semantics).
TEST(Gpt2ReferenceTest, KvCacheMatchesReplay) {
  const ModelConfig cfg = tiny_config();
  const Gpt2Weights w = Gpt2Weights::random(cfg, 19);
  const std::vector<std::uint32_t> tokens{3, 1, 4, 1, 5, 9, 2, 6};

  Gpt2Reference incremental(w);
  std::vector<float> h_inc;
  for (auto t : tokens) h_inc = incremental.forward_token(t);

  Gpt2Reference replay(w);
  std::vector<float> h_rep;
  for (auto t : tokens) h_rep = replay.forward_token(t);

  ASSERT_EQ(h_inc.size(), h_rep.size());
  for (std::size_t i = 0; i < h_inc.size(); ++i) {
    EXPECT_FLOAT_EQ(h_inc[i], h_rep[i]);
  }
}

// Property sweep over configurations: the reference must run and produce
// finite hidden states for assorted architectures.
struct CfgParam {
  std::uint32_t layers, d_model, heads, d_ff;
};

class ReferencePropertyTest : public ::testing::TestWithParam<CfgParam> {};

TEST_P(ReferencePropertyTest, HiddenStatesAreFinite) {
  const CfgParam p = GetParam();
  ModelConfig cfg = tiny_config();
  cfg.n_layer = p.layers;
  cfg.d_model = p.d_model;
  cfg.n_head = p.heads;
  cfg.d_ff = p.d_ff;
  const Gpt2Weights w = Gpt2Weights::random(cfg, 23);
  Gpt2Reference ref(w);
  std::vector<float> h;
  for (std::uint32_t t = 0; t < 5; ++t) h = ref.forward_token(t % cfg.vocab_size);
  for (float v : h) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    ArchSweep, ReferencePropertyTest,
    ::testing::Values(CfgParam{1, 16, 2, 32}, CfgParam{2, 32, 4, 64},
                      CfgParam{3, 48, 6, 96}, CfgParam{4, 64, 8, 256},
                      CfgParam{2, 64, 4, 64}, CfgParam{1, 128, 16, 512}),
    [](const ::testing::TestParamInfo<CfgParam>& info) {
      return "L" + std::to_string(info.param.layers) + "_d" +
             std::to_string(info.param.d_model) + "_h" +
             std::to_string(info.param.heads) + "_f" +
             std::to_string(info.param.d_ff);
    });

}  // namespace
}  // namespace looplynx::model
