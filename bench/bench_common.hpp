// Shared helpers for the paper-table/figure harnesses.
#pragma once

#include <cstdint>
#include <string>

#include "core/arch_config.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "util/cli.hpp"

namespace looplynx::bench {

/// Standard request mix used for Table II / Table III style "average
/// per-token" numbers (documented in EXPERIMENTS.md).
inline constexpr std::uint32_t kMixPrefill = 64;
inline constexpr std::uint32_t kMixDecode = 512;

/// Default sampling stride for full-length GPT-2 runs: ~3% interpolation
/// error bound is verified by SystemTest.SampledRunApproximatesExactRun.
inline core::RunOptions fast_options(const util::Cli& cli) {
  core::RunOptions opt;
  opt.token_sample_stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 16));
  return opt;
}

inline model::ModelConfig model_from_cli(const util::Cli& cli) {
  const std::string name = cli.get_or("model", "gpt2-medium");
  if (name == "gpt2-small") return model::gpt2_small();
  if (name == "gpt2-xl") return model::gpt2_xl();
  return model::gpt2_medium();
}

}  // namespace looplynx::bench
