// Fleet-level serving metrics: what the load benches sweep and the tests
// assert on. All latencies are reported in milliseconds of accelerator
// wall-clock (cycles / frequency); percentiles use util::percentile_summary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace looplynx::serve {

/// Per-request outcome, kept when ServingConfig::keep_request_records is
/// set (host::Host batch submission needs to map fleet timing back onto
/// individual callers). Ordered by request id == injection order.
struct RequestRecord {
  std::uint32_t id = 0;
  std::uint32_t prefill_tokens = 0;
  std::uint32_t decode_tokens = 0;
  bool rejected = false;
  double queue_wait_ms = 0;
  double ttft_ms = 0;  // arrival -> prefill egress
  double e2e_ms = 0;   // arrival -> completion
};

struct SloConfig {
  double ttft_ms = 500.0;   // time to first token
  double token_ms = 100.0;  // mean per-decode-token latency
};

struct FleetMetrics {
  // ---- Counts ----
  std::uint64_t offered = 0;    // requests injected by the traffic process
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   // shed by admission control
  std::uint64_t decode_tokens = 0;  // produced across completed requests
  std::uint64_t total_tokens = 0;   // prefill + decode processed

  // ---- Rates (over the makespan) ----
  double duration_s = 0;
  double throughput_req_s = 0;
  double throughput_tok_s = 0;   // total tokens processed per second
  double decode_tok_s = 0;       // generated tokens per second
  /// Completed requests per second that met both SLOs — the metric that
  /// actually prices a fleet.
  double goodput_req_s = 0;
  SloConfig slo;

  // ---- Latency distributions (per completed request, ms) ----
  util::PercentileSummary ttft_ms;        // arrival -> prefill egress
  util::PercentileSummary token_ms;       // mean decode-token latency
  util::PercentileSummary e2e_ms;         // arrival -> completion
  util::PercentileSummary queue_wait_ms;  // arrival -> admission

  // ---- Scheduler / resource occupancy ----
  std::uint64_t iterations = 0;
  double mean_batch_size = 0;
  std::uint32_t peak_in_flight = 0;  // most requests admitted at once
  std::size_t peak_queue_depth = 0;
  double busy_fraction = 0;       // pipeline-occupied cycles / makespan
  double kv_peak_occupancy = 0;   // peak KV slots used / capacity
  std::uint64_t kv_stall_events = 0;  // admissions deferred by KV pressure

  /// Per-request outcomes; empty unless requested via the ServingConfig.
  std::vector<RequestRecord> requests;

  /// Two-column summary table for examples and reports.
  util::Table to_table(const std::string& title) const;
};

}  // namespace looplynx::serve
