#include "sim/engine.hpp"

namespace looplynx::sim {

Engine::~Engine() {
  // Drop scheduled handles without resuming them; the frames they reference
  // are owned by roots_ (directly or through nested child tasks) and are
  // destroyed when roots_ is cleared below.
  while (!queue_.empty()) queue_.pop();
  roots_.clear();
}

void Engine::schedule_at(Cycles time, std::coroutine_handle<> h) {
  if (time < now_) time = now_;  // never schedule into the past
  queue_.push(Item{time, seq_++, h});
}

Engine::RootId Engine::spawn(Task task) {
  if (++spawns_since_sweep_ >= 4096) {
    spawns_since_sweep_ = 0;
    sweep_finished_roots();
  }
  const RootId id = roots_.size();
  schedule(0, task.handle());
  roots_.push_back(std::move(task));
  live_roots_.push_back(id);
  return id;
}

void Engine::sweep_finished_roots() {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < live_roots_.size(); ++i) {
    Task& root = roots_[live_roots_[i]];
    if (root.valid() && root.done()) {
      root.rethrow_if_failed();
      root = Task{};  // free the frame; done() stays true for this id
    } else {
      live_roots_[keep++] = live_roots_[i];
    }
  }
  live_roots_.resize(keep);
}

bool Engine::root_done(RootId id) const {
  return id < roots_.size() && roots_[id].done();
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.time;
    if (item.handle) {
      item.handle.resume();
    } else {
      dispatch_call(item.seq);
    }
    ++processed;
    ++events_;
  }
  check_root_failures();
  return processed;
}

bool Engine::run_until(Cycles time) {
  while (!queue_.empty() && queue_.top().time <= time) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.time;
    if (item.handle) {
      item.handle.resume();
    } else {
      dispatch_call(item.seq);
    }
    ++events_;
  }
  now_ = time;
  check_root_failures();
  return queue_.empty();
}

void Engine::dispatch_call(std::uint64_t seq) {
  // Zero-delay callbacks (the only current use) fire in registration
  // order, so the match is at the head cursor; the cursor dodges the
  // O(pending) erase a front pop would cost. Out-of-order matches (mixed
  // delays) fall back to a scan + erase.
  for (std::size_t i = calls_head_; i < calls_.size(); ++i) {
    if (calls_[i].seq != seq) continue;
    const CallItem c = calls_[i];
    if (i == calls_head_) {
      if (++calls_head_ == calls_.size()) {
        calls_.clear();
        calls_head_ = 0;
      }
    } else {
      calls_.erase(calls_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    c.fn(c.a, c.b);
    return;
  }
}

void Engine::check_root_failures() {
  for (const Task& root : roots_) {
    if (root.done()) root.rethrow_if_failed();
  }
}

}  // namespace looplynx::sim
