#include "core/node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace looplynx::core {

namespace {

std::uint32_t ceil_div_u32(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint32_t>((a + b - 1) / b);
}

}  // namespace

Node::Node(sim::Engine& engine, const ArchConfig& arch,
           const model::ModelConfig& model, std::uint32_t node_id,
           net::RingFabric* fabric)
    : engine_(&engine),
      arch_(arch),
      model_(model),
      id_(node_id),
      fabric_(fabric) {
  arch_.validate();
  model_.validate();
  assert(model_.n_head % arch_.num_nodes == 0);
  assert(model_.d_model % arch_.num_nodes == 0);
  assert(model_.d_ff % arch_.num_nodes == 0);
  assert(arch_.num_nodes == 1 || fabric_ != nullptr);

  // The n_channel weight channels (and the KV channels) are private to this
  // node and always transfer symmetric shards in lockstep, so they are
  // modeled as one aggregated channel of n x the per-channel bandwidth.
  hw::HbmChannelConfig weight_cfg{
      .bytes_per_cycle = arch_.hbm_bytes_per_cycle() * arch_.n_channel,
      .burst_setup_cycles = arch_.dma_setup_cycles,
      .burst_efficiency = arch_.hbm_efficiency};
  weight_stream_ = std::make_unique<hw::HbmChannel>(
      engine, weight_cfg, "n" + std::to_string(id_) + ".weights");

  hw::HbmChannelConfig kv_cfg{
      .bytes_per_cycle = arch_.hbm_bytes_per_cycle() * arch_.kv_channels,
      .burst_setup_cycles = arch_.dma_setup_cycles,
      .burst_efficiency = arch_.hbm_efficiency};
  kv_stream_ = std::make_unique<hw::HbmChannel>(
      engine, kv_cfg, "n" + std::to_string(id_) + ".kv");

  mpu_ = std::make_unique<hw::MacArray>(
      engine,
      hw::MacArrayConfig{.lanes = arch_.mpu_lanes(),
                         .pipeline_depth = arch_.mac_pipeline_depth,
                         .drain_cycles = 4},
      "n" + std::to_string(id_) + ".mpu");
  score_mac_ = std::make_unique<hw::MacArray>(
      engine,
      hw::MacArrayConfig{.lanes = arch_.score_lanes,
                         .pipeline_depth = arch_.mac_pipeline_depth,
                         .drain_cycles = 4},
      "n" + std::to_string(id_) + ".score");
  mix_mac_ = std::make_unique<hw::MacArray>(
      engine,
      hw::MacArrayConfig{.lanes = arch_.mix_lanes,
                         .pipeline_depth = arch_.mac_pipeline_depth,
                         .drain_cycles = 4},
      "n" + std::to_string(id_) + ".mix");
}

// ---------------------------------------------------------------------------
// Cost formulas
// ---------------------------------------------------------------------------

std::uint32_t Node::rows_per_node(std::uint64_t rows_total) const {
  return static_cast<std::uint32_t>(rows_total / arch_.num_nodes);
}

std::uint32_t Node::block_rows(std::uint32_t block_index,
                               std::uint32_t rows_node) const {
  const std::uint32_t start = block_index * arch_.mp_block_rows;
  return std::min(arch_.mp_block_rows, rows_node - start);
}

sim::Cycles Node::vec_cycles(std::uint64_t len, std::uint32_t lanes) const {
  return arch_.cp_fixed_cycles + (len + lanes - 1) / lanes;
}

sim::Cycles Node::quant_cycles(std::uint64_t values, bool gelu) const {
  const sim::Cycles per_pass =
      arch_.quant_fixed_cycles + (values + arch_.quant_lanes - 1) /
                                     arch_.quant_lanes;
  // GELU shares the quant unit's SIMD lanes: one extra pass.
  return gelu ? 2 * per_pass : per_pass;
}

sim::Cycles Node::softmax_cycles(std::uint32_t seq) const {
  // Two passes over the scores: exponentiation + global sum (softmax.1),
  // then normalization into weighted scores (softmax.2) — paper Fig. 4(b).
  return arch_.softmax_fixed_cycles +
         2ULL * ((seq + arch_.softmax_lanes - 1) / arch_.softmax_lanes);
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

sim::Task Node::overlap_read_compute(hw::HbmChannel& channel,
                                     std::uint64_t bytes, hw::MacArray& mac,
                                     std::uint64_t macs) {
  // Streamed operation: the MAC array consumes the burst as it arrives, so
  // the op takes max(read, compute); both units are busy for their share.
  sim::CountdownLatch latch(*engine_, 2);
  engine_->spawn(sim::run_then_count_down(channel.read(bytes), latch));
  engine_->spawn(sim::run_then_count_down(mac.compute(macs), latch));
  co_await latch.wait();
}

sim::Task Node::router_gather(sim::Fifo<net::Datapack>& in,
                              std::uint32_t npacks, bool enabled) {
  const std::uint32_t k = arch_.num_nodes;
  if (k <= 1 || !enabled) {
    // Drain-only path: the op's outputs stay local (e.g. QKV head slices).
    for (std::uint32_t p = 0; p < npacks; ++p) (void)co_await in.get();
    co_return;
  }
  if (arch_.hide_network_sync) {
    // Packs circulate as soon as they are produced, overlapping compute
    // (paper Fig. 4(c)); only the last pack's rounds are exposed.
    for (std::uint32_t p = 0; p < npacks; ++p) {
      net::Datapack pack = co_await in.get();
      for (std::uint32_t round = 1; round < k; ++round) {
        co_await fabric_->send(id_, pack);
        pack = co_await fabric_->rx(id_).get();
      }
    }
  } else {
    // Baseline: wait for the whole sub-vector, then synchronize.
    std::vector<net::Datapack> packs;
    packs.reserve(npacks);
    for (std::uint32_t p = 0; p < npacks; ++p) {
      packs.push_back(co_await in.get());
    }
    for (net::Datapack& pack : packs) {
      for (std::uint32_t round = 1; round < k; ++round) {
        co_await fabric_->send(id_, pack);
        pack = co_await fabric_->rx(id_).get();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused MP kernel (paper Fig. 6(a))
// ---------------------------------------------------------------------------

sim::Task Node::mp_dma_proc(const MpOp& op, std::uint32_t nblocks,
                            sim::Fifo<std::uint32_t>& out) {
  const std::uint32_t rows_node = rows_per_node(op.rows_total);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(block_rows(b, rows_node)) * op.cols;
    co_await weight_stream_->read(bytes);  // int8 weights, burst mode
    co_await out.put(b);
  }
}

sim::Task Node::mp_mac_proc(const MpOp& op, std::uint32_t nblocks,
                            sim::Fifo<std::uint32_t>& in,
                            sim::Fifo<std::uint32_t>& out) {
  const std::uint32_t rows_node = rows_per_node(op.rows_total);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const std::uint32_t block = co_await in.get();
    const std::uint64_t macs =
        static_cast<std::uint64_t>(block_rows(block, rows_node)) * op.cols;
    co_await mpu_->compute(macs);
    co_await out.put(block);
  }
}

sim::Task Node::mp_quant_proc(const MpOp& op, std::uint32_t nblocks,
                              sim::Fifo<std::uint32_t>& in,
                              sim::Fifo<net::Datapack>& out,
                              sim::Cycles* compute_end) {
  const std::uint32_t rows_node = rows_per_node(op.rows_total);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const std::uint32_t block = co_await in.get();
    const std::uint32_t rows = block_rows(block, rows_node);
    co_await engine_->delay(quant_cycles(rows, op.gelu));
    co_await out.put(net::Datapack{
        .bytes = static_cast<std::uint64_t>(rows) * op.gather_elem_bytes,
        .src_node = id_,
        .block = block,
        .hops_left = arch_.num_nodes - 1,
        .last = block + 1 == nblocks});
  }
  *compute_end = engine_->now();
}

sim::Task Node::mp_stage(MpOp op) {
  const sim::Cycles begin = engine_->now();
  const std::uint32_t rows_node = rows_per_node(op.rows_total);
  const std::uint32_t nblocks = ceil_div_u32(rows_node, arch_.mp_block_rows);

  sim::Fifo<std::uint32_t> to_mac(*engine_, 2, "mp.to_mac");
  sim::Fifo<std::uint32_t> to_quant(*engine_, 2, "mp.to_quant");
  sim::Fifo<net::Datapack> to_router(
      *engine_, arch_.hide_network_sync ? 4 : nblocks + 1, "mp.to_router");

  sim::Cycles compute_end = begin;
  sim::CountdownLatch latch(*engine_, 4);
  engine_->spawn(
      sim::run_then_count_down(mp_dma_proc(op, nblocks, to_mac), latch));
  engine_->spawn(sim::run_then_count_down(
      mp_mac_proc(op, nblocks, to_mac, to_quant), latch));
  engine_->spawn(sim::run_then_count_down(
      mp_quant_proc(op, nblocks, to_quant, to_router, &compute_end), latch));
  engine_->spawn(sim::run_then_count_down(
      router_gather(to_router, nblocks, op.gather), latch));
  co_await latch.wait();

  const sim::Cycles end = engine_->now();
  trace_.add(category::kLinear, begin, compute_end);
  if (end > compute_end) trace_.add(category::kSync, compute_end, end);
}

// ---------------------------------------------------------------------------
// Fused MHA kernel (paper Fig. 6(b))
// ---------------------------------------------------------------------------

sim::Task Node::mha_score_proc(std::uint32_t seq, std::uint32_t heads,
                               sim::Fifo<std::uint32_t>& out) {
  const std::uint64_t hd = model_.head_dim();
  for (std::uint32_t h = 0; h < heads; ++h) {
    // Key-cache burst (int8) streamed into the first MAC array.
    co_await overlap_read_compute(*kv_stream_, seq * hd, *score_mac_,
                                  static_cast<std::uint64_t>(seq) * hd);
    co_await out.put(h);
  }
}

sim::Task Node::mha_softmax_proc(std::uint32_t seq, std::uint32_t heads,
                                 sim::Fifo<std::uint32_t>& in,
                                 sim::Fifo<std::uint32_t>& out) {
  for (std::uint32_t h = 0; h < heads; ++h) {
    const std::uint32_t head = co_await in.get();
    co_await engine_->delay(softmax_cycles(seq));
    co_await out.put(head);
  }
}

sim::Task Node::mha_mix_proc(std::uint32_t seq, std::uint32_t heads,
                             sim::Fifo<std::uint32_t>& in,
                             sim::Fifo<net::Datapack>& out,
                             sim::Cycles* compute_end) {
  const std::uint64_t hd = model_.head_dim();
  for (std::uint32_t h = 0; h < heads; ++h) {
    const std::uint32_t head = co_await in.get();
    // Value-cache burst into the second MAC array (token mixing), then the
    // head's output chunk passes through the quant unit.
    co_await overlap_read_compute(*kv_stream_, seq * hd, *mix_mac_,
                                  static_cast<std::uint64_t>(seq) * hd);
    co_await engine_->delay(quant_cycles(hd, /*gelu=*/false));
    co_await out.put(net::Datapack{.bytes = hd,
                                   .src_node = id_,
                                   .block = head,
                                   .hops_left = arch_.num_nodes - 1,
                                   .last = h + 1 == heads});
  }
  *compute_end = engine_->now();
}

sim::Task Node::mha_stage(std::uint32_t seq) {
  const sim::Cycles begin = engine_->now();
  const std::uint32_t heads = model_.n_head / arch_.num_nodes;
  const std::uint64_t hd = model_.head_dim();
  sim::Cycles compute_end = begin;
  sim::Cycles softmax_exposed = 0;

  if (arch_.headwise_pipeline) {
    // Head-wise task-level pipeline: score(h+2) || softmax(h+1) || mix(h).
    sim::Fifo<std::uint32_t> to_softmax(*engine_, 1, "mha.to_softmax");
    sim::Fifo<std::uint32_t> to_mix(*engine_, 1, "mha.to_mix");
    sim::Fifo<net::Datapack> to_router(*engine_, 2, "mha.to_router");
    sim::CountdownLatch latch(*engine_, 4);
    engine_->spawn(sim::run_then_count_down(
        mha_score_proc(seq, heads, to_softmax), latch));
    engine_->spawn(sim::run_then_count_down(
        mha_softmax_proc(seq, heads, to_softmax, to_mix), latch));
    engine_->spawn(sim::run_then_count_down(
        mha_mix_proc(seq, heads, to_mix, to_router, &compute_end), latch));
    engine_->spawn(
        sim::run_then_count_down(router_gather(to_router, heads), latch));
    co_await latch.wait();
  } else {
    // Baseline: heads processed one at a time, softmax fully exposed.
    sim::Fifo<net::Datapack> to_router(
        *engine_, arch_.hide_network_sync ? 2 : heads + 1, "mha.to_router");
    sim::CountdownLatch latch(*engine_, 1);
    engine_->spawn(
        sim::run_then_count_down(router_gather(to_router, heads), latch));
    for (std::uint32_t h = 0; h < heads; ++h) {
      co_await overlap_read_compute(*kv_stream_, seq * hd, *score_mac_,
                                    static_cast<std::uint64_t>(seq) * hd);
      const sim::Cycles sm = softmax_cycles(seq);
      co_await engine_->delay(sm);
      softmax_exposed += sm;
      co_await overlap_read_compute(*kv_stream_, seq * hd, *mix_mac_,
                                    static_cast<std::uint64_t>(seq) * hd);
      co_await engine_->delay(quant_cycles(hd, /*gelu=*/false));
      co_await to_router.put(net::Datapack{.bytes = hd,
                                           .src_node = id_,
                                           .block = h,
                                           .hops_left = arch_.num_nodes - 1,
                                           .last = h + 1 == heads});
    }
    compute_end = engine_->now();
    co_await latch.wait();
  }

  const sim::Cycles end = engine_->now();
  // Attribute exposed softmax separately so the Fig. 5 ablation can show it
  // disappearing under the head-wise pipeline.
  trace_.add_cycles(category::kSoftmax, softmax_exposed);
  const sim::Cycles mha_busy = compute_end - begin;
  trace_.add_cycles(category::kMha,
                    mha_busy > softmax_exposed ? mha_busy - softmax_exposed
                                               : 0);
  if (end > compute_end) trace_.add(category::kSync, compute_end, end);
}

// ---------------------------------------------------------------------------
// Fused LN&Res kernel + scheduler hops
// ---------------------------------------------------------------------------

sim::Task Node::cp_stage(CpKind kind) {
  const sim::Cycles begin = engine_->now();
  const std::uint64_t d = model_.d_model;
  sim::Cycles cost = 0;
  if (arch_.fuse_ln_res) {
    const std::uint32_t lanes = arch_.cp_lanes_fused;
    switch (kind) {
      case CpKind::kLnQuant:
      case CpKind::kResLnQuant:
        // Residual overlapped with the LN mean/variance pass; quantization
        // overlapped with the normalize pass: two exposed passes total.
        cost = 2 * vec_cycles(d, lanes);
        break;
      case CpKind::kRes:
        cost = 0;  // folded into the next LN&Res invocation
        break;
      case CpKind::kFinalLn:
        cost = 2 * vec_cycles(d, lanes);
        break;
    }
  } else {
    const std::uint32_t lanes = arch_.cp_lanes_base;
    switch (kind) {
      case CpKind::kLnQuant:
        cost = 3 * vec_cycles(d, lanes);  // mean/var, normalize, quant
        break;
      case CpKind::kResLnQuant:
        cost = 4 * vec_cycles(d, lanes);  // residual + the three above
        break;
      case CpKind::kRes:
        cost = vec_cycles(d, lanes);
        break;
      case CpKind::kFinalLn:
        cost = 2 * vec_cycles(d, lanes);
        break;
    }
  }
  if (cost > 0) co_await engine_->delay(cost);
  trace_.add(category::kCriticalPath, begin, engine_->now());
}

sim::Task Node::sched_hop() {
  const sim::Cycles begin = engine_->now();
  co_await engine_->delay(arch_.scheduler_overhead_cycles);
  trace_.add(category::kScheduler, begin, engine_->now());
}

// ---------------------------------------------------------------------------
// Token schedule (paper Fig. 3(c.1))
// ---------------------------------------------------------------------------

sim::Task Node::run_token(std::uint32_t pos) {
  const std::uint32_t seq = pos + 1;  // includes the token being processed
  const std::uint64_t d = model_.d_model;
  const std::uint64_t f = model_.d_ff;

  for (std::uint32_t layer = 0; layer < model_.n_layer; ++layer) {
    (void)layer;
    // Stage 1: LN1 (+ residual of the previous block when fused) + quant.
    co_await sched_hop();
    co_await cp_stage(CpKind::kLnQuant);
    // Stage 2: QKV projection — outputs stay head-local, no ring sync.
    co_await sched_hop();
    co_await mp_stage(MpOp{.name = "qkv",
                           .rows_total = 3 * d,
                           .cols = d,
                           .gather = false,
                           .gather_elem_bytes = 1,
                           .gelu = false});
    // Stage 3: multi-head attention over local heads; the int8 attention
    // sub-vector is gathered so every node holds the full vector for proj.
    co_await sched_hop();
    co_await mha_stage(seq);
    // Stage 4: output projection; fp16 partial outputs gathered for the
    // residual connection.
    co_await sched_hop();
    co_await mp_stage(MpOp{.name = "proj",
                           .rows_total = d,
                           .cols = d,
                           .gather = true,
                           .gather_elem_bytes = 2,
                           .gelu = false});
    // Stage 5: residual + LN2 + quant.
    co_await sched_hop();
    co_await cp_stage(CpKind::kResLnQuant);
    // Stage 6: FC1 with fused GELU + int8 gather.
    co_await sched_hop();
    co_await mp_stage(MpOp{.name = "fc1",
                           .rows_total = f,
                           .cols = d,
                           .gather = true,
                           .gather_elem_bytes = 1,
                           .gelu = true});
    // Stage 7: FC2; fp16 partials gathered for the residual.
    co_await sched_hop();
    co_await mp_stage(MpOp{.name = "fc2",
                           .rows_total = d,
                           .cols = f,
                           .gather = true,
                           .gather_elem_bytes = 2,
                           .gelu = false});
    // Stage 8: second residual — only exposed without the fused kernel.
    if (!arch_.fuse_ln_res) {
      co_await cp_stage(CpKind::kRes);
    }
  }
  co_await cp_stage(CpKind::kFinalLn);
}

}  // namespace looplynx::core
