// Discrete-event simulation engine with a cycle-granular clock.
//
// The engine advances a single global clock (in accelerator cycles) and
// resumes coroutine processes in deterministic order: events at the same
// cycle fire in the order they were scheduled (FIFO tie-break on a sequence
// number). This determinism is load-bearing — latency results must be
// bit-reproducible across runs so the benchmark harnesses regenerate the
// paper's tables exactly.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/task.hpp"

namespace looplynx::sim {

/// Simulated time in clock cycles of the accelerator's clock domain.
using Cycles = std::uint64_t;

/// Thrown when a root process terminated with an exception; rethrown from
/// Engine::run with the original exception nested via std::rethrow.
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Cycles now() const noexcept { return now_; }

  /// Number of events processed so far.
  std::uint64_t events_processed() const noexcept { return events_; }

  /// Schedules `h` to resume `delay` cycles from now.
  void schedule(Cycles delay, std::coroutine_handle<> h) {
    schedule_at(now_ + delay, h);
  }

  /// Schedules `h` to resume at absolute time `time` (>= now).
  void schedule_at(Cycles time, std::coroutine_handle<> h);

  /// Schedules a plain callback `delay` cycles from now — the
  /// allocation-free alternative to spawning a coroutine root for a
  /// one-shot event. The callback occupies exactly the queue position the
  /// spawned root's first resumption would have (same clock, same
  /// tie-break sequence number), so swapping one for the other cannot
  /// reorder any event. Used by the serve layer's scheduler-driven fast
  /// path, where per-request root processes would otherwise be created
  /// only to enqueue the request and exit.
  void schedule_call(Cycles delay, void (*fn)(void*, void*), void* a,
                     void* b) {
    // The payload lives in a side table keyed by the event's sequence
    // number so Item (copied on every heap sift) stays three words.
    calls_.push_back(CallItem{seq_, fn, a, b});
    queue_.push(Item{now_ + delay, seq_++, {}});
  }

  /// Identifier for a spawned root process.
  using RootId = std::size_t;

  /// Takes ownership of a root process and schedules it to start at the
  /// current time. Returns an id usable with root_done().
  RootId spawn(Task task);

  /// True when the given root process has run to completion.
  bool root_done(RootId id) const;

  /// Runs until the event queue is empty (processes blocked on channels do
  /// not keep the simulation alive). Returns the number of events processed
  /// in this call. Rethrows the first root-process exception, if any.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Runs all events with time <= `time`, then sets now to `time`.
  /// Returns true if the event queue is empty afterwards.
  bool run_until(Cycles time);

  /// Awaitable that suspends the current process for `delay` cycles.
  struct DelayAwaiter {
    Engine* engine;
    Cycles delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      engine->schedule(delay, h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await engine.delay(n): advance this process by n cycles.
  DelayAwaiter delay(Cycles cycles) { return DelayAwaiter{this, cycles}; }

  /// co_await engine.yield(): re-schedule at the current cycle, after all
  /// events already queued for this cycle.
  DelayAwaiter yield() { return DelayAwaiter{this, 0}; }

 private:
  struct Item {
    Cycles time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;  // null for callback items
    bool operator>(const Item& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Pending schedule_call payload, keyed by the event's seq. The table
  /// holds only not-yet-fired callbacks (a handful at any instant), so the
  /// linear lookup on dispatch is cheaper than widening every Item.
  struct CallItem {
    std::uint64_t seq;
    void (*fn)(void*, void*);
    void* a;
    void* b;
  };

  /// Pops and runs the callback registered under `seq`.
  void dispatch_call(std::uint64_t seq);

  void check_root_failures();

  /// Frees frames of completed root processes so long simulations (which
  /// spawn one short-lived process per kernel invocation) stay bounded in
  /// memory. Ids stay valid: a swept root reads as done. Only roots still
  /// holding a frame (live_roots_) are visited, so total sweep work is
  /// O(peak live roots) per sweep instead of O(all roots ever spawned).
  void sweep_finished_roots();

  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue_;
  std::vector<CallItem> calls_;
  std::size_t calls_head_ = 0;  // first not-yet-fired entry in calls_
  std::vector<Task> roots_;
  std::vector<RootId> live_roots_;  // roots whose frame is not yet freed
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t spawns_since_sweep_ = 0;
};

}  // namespace looplynx::sim
