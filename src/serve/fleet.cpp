#include "serve/fleet.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "serve/replica.hpp"
#include "util/stats.hpp"

namespace looplynx::serve {

BalancerPolicy parse_balancer_policy(const std::string& name) {
  if (name == "rr") return BalancerPolicy::kRoundRobin;
  if (name == "jsq") return BalancerPolicy::kJoinShortestQueue;
  if (name == "kv") return BalancerPolicy::kKvAware;
  throw std::invalid_argument("unknown balancer policy \"" + name +
                              "\" (expected rr|jsq|kv)");
}

const char* balancer_policy_name(BalancerPolicy policy) {
  switch (policy) {
    case BalancerPolicy::kRoundRobin:
      return "round-robin";
    case BalancerPolicy::kJoinShortestQueue:
      return "join-shortest-queue";
    case BalancerPolicy::kKvAware:
      return "kv-aware";
  }
  return "unknown";
}

std::uint32_t LoadBalancer::pick(const std::vector<ReplicaLoad>& loads) {
  const auto n = static_cast<std::uint32_t>(loads.size());
  switch (policy_) {
    case BalancerPolicy::kRoundRobin: {
      const std::uint32_t i = round_robin_next_ % n;
      ++round_robin_next_;
      return i;
    }
    case BalancerPolicy::kJoinShortestQueue: {
      std::uint32_t best = 0;
      for (std::uint32_t i = 1; i < n; ++i) {
        // Strict < keeps ties on the lowest index.
        if (loads[i].outstanding < loads[best].outstanding) best = i;
      }
      return best;
    }
    case BalancerPolicy::kKvAware: {
      std::uint32_t best = 0;
      for (std::uint32_t i = 1; i < n; ++i) {
        if (loads[i].free_kv_tokens != loads[best].free_kv_tokens) {
          if (loads[i].free_kv_tokens > loads[best].free_kv_tokens) best = i;
          continue;
        }
        // Equal pools (e.g. a same-cycle burst before any admission):
        // fall back to join-shortest-queue, then the lowest index.
        if (loads[i].outstanding < loads[best].outstanding) best = i;
      }
      return best;
    }
  }
  return 0;
}

FleetConfig FleetConfig::homogeneous(const ServingConfig& base,
                                     std::uint32_t n,
                                     BalancerPolicy balancer) {
  FleetConfig cfg;
  cfg.traffic = base.traffic;
  cfg.balancer = balancer;
  // Per-replica traffic members are ignored (the fleet has one stream);
  // blank them instead of duplicating e.g. a large explicit_arrivals
  // schedule N times.
  ServingConfig replica = base;
  replica.traffic = TrafficConfig{};
  cfg.replicas.assign(n, replica);
  return cfg;
}

void FleetSim::validate() {
  if (config_.replicas.empty()) {
    throw std::invalid_argument("fleet needs at least one replica");
  }
  const double frequency = config_.replicas.front().arch.frequency_hz;
  for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
    const ServingConfig& r = config_.replicas[i];
    const std::string where = " (replica " + std::to_string(i) + ")";
    if (r.scheduler.max_batch == 0) {
      throw std::invalid_argument("scheduler max_batch must be >= 1" + where);
    }
    if (r.scheduler.max_in_flight == 0) {
      throw std::invalid_argument("scheduler max_in_flight must be >= 1" +
                                  where);
    }
    if (r.kv_block_tokens == 0) {
      throw std::invalid_argument(
          "kv_block_tokens must be >= 1 (1 = token-granular)" + where);
    }
    if (r.arch.frequency_hz != frequency) {
      // The engine advances one cycle-granular clock; replicas in another
      // clock domain would need cycle-rate conversion the fleet does not
      // model. Vary node counts / budgets / schedulers instead.
      throw std::invalid_argument(
          "fleet replicas must share one arch.frequency_hz" + where);
    }
  }
  if (!config_.traffic.explicit_arrivals.empty()) {
    config_.traffic.num_requests = static_cast<std::uint32_t>(
        config_.traffic.explicit_arrivals.size());
  }
}

FleetSim::FleetSim(const FleetConfig& config) : config_(config) {
  validate();
  costs_.reserve(config_.replicas.size());
  for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
    const ServingConfig& r = config_.replicas[i];
    const auto same = [&](const ServingConfig& other) {
      return other.arch == r.arch && other.model == r.model &&
             other.cost_probe_stride == r.cost_probe_stride;
    };
    std::size_t found = i;
    for (std::size_t j = 0; j < i; ++j) {
      if (same(config_.replicas[j])) {
        found = j;
        break;
      }
    }
    if (found < i) {
      costs_.push_back(costs_[found]);  // share the probe
    } else {
      costs_.emplace_back(r.arch, r.model, r.cost_probe_stride);
    }
  }
}

FleetSim::FleetSim(const FleetConfig& config,
                   const core::StepCostModel& costs)
    : config_(config) {
  validate();
  costs_.assign(config_.replicas.size(), costs);
}

namespace {

/// Everything one fleet run owns. Engine first: coroutines of replicas
/// that drained early park on their work signals and are destroyed
/// un-resumed with the engine, after everything they reference.
struct FleetRun {
  FleetRun(const FleetConfig& cfg_,
           const std::vector<core::StepCostModel>& costs)
      : cfg(cfg_),
        traffic(cfg_.traffic, cfg_.replicas.front().arch.frequency_hz),
        balancer(cfg_.balancer) {
    shared.target = cfg_.traffic.num_requests;
    replicas.reserve(cfg_.replicas.size());
    for (std::size_t i = 0; i < cfg_.replicas.size(); ++i) {
      replicas.push_back(std::make_unique<detail::Replica>(
          engine, cfg_.replicas[i], costs[i], shared,
          static_cast<std::uint32_t>(i)));
    }
  }

  const FleetConfig& cfg;
  sim::Engine engine;
  detail::FleetShared shared;
  std::vector<std::unique_ptr<detail::Replica>> replicas;
  TrafficGen traffic;
  LoadBalancer balancer;

  /// One routing decision: snapshot every replica's load, ask the
  /// balancer. Pure bookkeeping — no engine events, so a 1-replica fleet
  /// replays ServingSim's exact event sequence.
  detail::Replica& route() {
    std::vector<LoadBalancer::ReplicaLoad> loads;
    loads.reserve(replicas.size());
    for (const auto& r : replicas) {
      loads.push_back({r->outstanding(),
                       static_cast<std::uint64_t>(r->kv.free_blocks()) *
                           r->kv.block_tokens()});
    }
    return *replicas[balancer.pick(loads)];
  }
};

void append(std::vector<double>& pool, const std::vector<double>& samples) {
  pool.insert(pool.end(), samples.begin(), samples.end());
}

}  // namespace

FleetResult FleetSim::run() const {
  FleetRun run(config_, costs_);
  const auto route = [&run]() -> detail::Replica& { return run.route(); };
  for (auto& r : run.replicas) {
    run.engine.spawn(detail::scheduler_proc(*r));
  }
  if (config_.traffic.process == ArrivalProcess::kClosedLoop) {
    const std::uint32_t clients =
        std::max<std::uint32_t>(1, config_.traffic.clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      run.engine.spawn(detail::client_proc(run.engine, run.shared,
                                           run.traffic,
                                           config_.traffic.think_time_s,
                                           route));
    }
  } else {
    run.engine.spawn(detail::arrivals_proc(run.engine, run.traffic, route));
  }
  run.engine.run();

  FleetResult result;
  const std::size_t n = run.replicas.size();
  const double frequency = config_.replicas.front().arch.frequency_hz;
  const sim::Cycles makespan = run.engine.now();
  const double duration_s = static_cast<double>(makespan) / frequency;

  // Pool the per-request latency samples (and sum the counters) BEFORE
  // finalize_metrics moves each replica's vectors into its own summary.
  std::vector<double> ttft, token, e2e, queue_wait, gap;
  std::uint64_t good = 0;
  sim::Cycles busy = 0, decode_stall = 0, recompute = 0;
  FleetMetrics& m = result.fleet;
  double batch_members = 0;
  for (const auto& r : run.replicas) {
    append(ttft, r->ttft_ms);
    append(token, r->token_ms);
    append(e2e, r->e2e_ms);
    append(queue_wait, r->queue_wait_ms);
    append(gap, r->gap_ms);
    good += r->good;
    busy += r->busy_cycles;
    decode_stall += r->decode_stall_cycles;
    recompute += r->recompute_cycles;
    m.completed += r->completed;
    m.rejected += r->rejected;
    m.decode_tokens += r->decode_tokens;
    m.total_tokens += r->total_tokens;
    m.iterations += r->sched.iterations().size();
    batch_members += r->sched.mean_batch_size() *
                     static_cast<double>(r->sched.iterations().size());
    m.prefill_chunk_steps += r->prefill_chunk_steps;
    m.chunked_prompts += r->chunked_prompts;
    m.decode_stall_iterations += r->decode_stall_iterations;
    m.peak_queue_depth = std::max(m.peak_queue_depth, r->queue.peak_depth());
    m.kv_peak_occupancy =
        std::max(m.kv_peak_occupancy, r->kv.peak_occupancy());
    m.kv_stall_events += r->kv.stall_events();
    m.kv_over_release_events += r->kv.over_release_events();
    m.kv_capacity_blocks += r->kv.capacity_blocks();
    m.kv_peak_used_blocks += r->kv.peak_used_blocks();
    m.kv_peak_frag_tokens += r->kv.peak_frag_tokens();
    m.preemptions += r->preemptions;
    m.recompute_tokens += r->recompute_tokens;
    result.routed.push_back(r->routed);
  }
  m.offered = run.shared.injected;
  m.slo = config_.replicas.front().slo;
  m.duration_s = duration_s;
  if (duration_s > 0) {
    m.throughput_req_s = static_cast<double>(m.completed) / duration_s;
    m.throughput_tok_s = static_cast<double>(m.total_tokens) / duration_s;
    m.decode_tok_s = static_cast<double>(m.decode_tokens) / duration_s;
    m.goodput_req_s = static_cast<double>(good) / duration_s;
    m.busy_fraction =
        static_cast<double>(busy) /
        (static_cast<double>(makespan) * static_cast<double>(n));
  }
  m.ttft_ms = util::percentile_summary(std::move(ttft));
  m.token_ms = util::percentile_summary(std::move(token));
  m.e2e_ms = util::percentile_summary(std::move(e2e));
  m.queue_wait_ms = util::percentile_summary(std::move(queue_wait));
  m.inter_token_gap_ms = util::percentile_summary(std::move(gap));
  if (m.iterations > 0) {
    m.mean_batch_size = batch_members / static_cast<double>(m.iterations);
  }
  m.decode_stall_ms =
      config_.replicas.front().arch.cycles_to_ms(decode_stall);
  m.recompute_ms = config_.replicas.front().arch.cycles_to_ms(recompute);
  m.peak_in_flight = run.shared.peak_active;
  m.preempt = config_.replicas.front().scheduler.preempt;
  m.kv_block_tokens = run.replicas.front()->kv.block_tokens();

  result.replicas.reserve(n);
  for (auto& r : run.replicas) {
    result.replicas.push_back(detail::finalize_metrics(*r));
  }
  for (const FleetMetrics& rm : result.replicas) {
    m.requests.insert(m.requests.end(), rm.requests.begin(),
                      rm.requests.end());
  }
  std::sort(m.requests.begin(), m.requests.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });

  std::uint64_t max_routed = 0, total_routed = 0;
  for (std::uint64_t r : result.routed) {
    max_routed = std::max(max_routed, r);
    total_routed += r;
  }
  if (total_routed > 0) {
    result.load_imbalance = static_cast<double>(max_routed) * static_cast<double>(n) /
                            static_cast<double>(total_routed);
  }
  bool any = false;
  double lo = 0, hi = 0;
  for (const FleetMetrics& rm : result.replicas) {
    if (rm.completed == 0) continue;
    if (!any) {
      lo = hi = rm.ttft_ms.p99;
      any = true;
    } else {
      lo = std::min(lo, rm.ttft_ms.p99);
      hi = std::max(hi, rm.ttft_ms.p99);
    }
  }
  result.ttft_p99_spread_ms = any ? hi - lo : 0.0;
  return result;
}

util::Table FleetResult::to_table(const std::string& title) const {
  util::Table t(title);
  t.set_header({"replica", "routed", "done/shed", "goodput", "TTFT p50",
                "TTFT p99", "tok p99", "in-flt", "busy", "KV peak",
                "preempt"});
  const auto row = [&](const std::string& name, const FleetMetrics& m,
                       std::uint64_t routed_count) {
    t.add_row({name, util::fmt_int(static_cast<long long>(routed_count)),
               util::fmt_int(static_cast<long long>(m.completed)) + "/" +
                   util::fmt_int(static_cast<long long>(m.rejected)),
               util::fmt_fixed(m.goodput_req_s, 2),
               util::fmt_fixed(m.ttft_ms.p50, 1),
               util::fmt_fixed(m.ttft_ms.p99, 1),
               util::fmt_fixed(m.token_ms.p99, 2),
               util::fmt_int(m.peak_in_flight),
               util::fmt_percent(m.busy_fraction, 1),
               util::fmt_percent(m.kv_peak_occupancy, 1),
               util::fmt_int(static_cast<long long>(m.preemptions))});
  };
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    row(std::to_string(i), replicas[i], routed[i]);
  }
  t.add_separator();
  row("fleet", fleet, fleet.offered);
  return t;
}

}  // namespace looplynx::serve
