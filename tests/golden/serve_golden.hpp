// Checked-in SHA-256 digests of the canonical serve-layer determinism
// sweep and the canonical observed export. Regenerate with
// tools/regen_determinism_golden.sh after an *intentional* serve-layer
// behavior change — never to paper over an unexplained diff (that diff
// IS the determinism regression the fixture exists to catch).
#pragma once

namespace looplynx::golden {

inline constexpr char kServeSweepSha256[] =
    "cf29e60925ba80b757830c239ca3a536e0690809e5f44f4f6a154386f21faa41";

/// Canonical Chrome-trace + Prometheus exports of two observed sweep
/// points; pins every byte both exporters emit (DESIGN.md §7).
inline constexpr char kObserveExportSha256[] =
    "ab758665507bb3d07ce56bd8bab72d4630a1727f2e3704aba549957f1f95d018";

/// Canonical prefix-cache sweep (multi-turn chat traffic through the
/// content-addressed cache, eviction tiers included); pins the cache
/// counters and every request's cached-prefix split (DESIGN.md §8).
inline constexpr char kCacheSweepSha256[] =
    "7a4e973f0aff16e7527525a95b1d088dc6da75186032d8cbe9ee05b60c863782";

/// Canonical disaggregated prefill/decode sweep (role splits with KV
/// migration and work stealing over the ring fabric, plus a per-tier
/// autoscaled point); pins the migration counters, fabric byte totals,
/// every request's migrated/stolen split, the per-tier live stats and
/// the tier-tagged scale log (DESIGN.md §10–§11).
inline constexpr char kDisaggSweepSha256[] =
    "552c06928ed3122a2f1a271f0f604dd5bc6975898a33fdf5ce918fdbf909067d";

}  // namespace looplynx::golden
