// One in-flight serving request: its [prefill : decode] shape, lifecycle
// timestamps (all in accelerator cycles) and the coroutine plumbing that
// connects its root process to the continuous-batching scheduler.
//
// Lifecycle: Queued -> Running -> Finished, or Queued -> Rejected when
// admission control drops it. The request's root process (ServingSim) parks
// on `grant`; every grant is one scheduler iteration turn, and `latch` is
// that iteration's batch barrier.
//
// Preemption (PreemptPolicy::kRecomputeYoungest) keeps the request Running
// but frees its KV block list and folds the decode tokens it had produced
// back into the prefill phase: `recompute_decoded` extends the prefill
// target so chunked prefill re-runs positions [0, prefill + decoded) —
// rebuilding the dropped KV — before decoding resumes. Tokens the host
// already saw are never re-emitted.
#pragma once

#include <cstdint>
#include <memory>

#include "serve/kv_block.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "workload/scenario.hpp"

namespace looplynx::serve {

enum class RequestState : std::uint8_t {
  kQueued,    // waiting for admission (KV blocks + in-flight budget)
  kRunning,   // admitted; participates in scheduler iterations
  kFinished,  // all decode tokens produced
  kRejected,  // dropped by admission control (queue full / oversized)
};

struct Request {
  Request(sim::Engine& engine, std::uint32_t id_, workload::Scenario shape_)
      : id(id_), shape(shape_), grant(engine), done(engine) {}
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  std::uint32_t id = 0;
  workload::Scenario shape;
  RequestState state = RequestState::kQueued;
  /// Live replica count when the balancer routed this request (1 for
  /// single-replica runs; under autoscaling the live set is the index
  /// prefix, so the serving replica's index is always < this).
  std::uint32_t live_at_route = 1;

  // ---- Lifecycle timestamps (engine cycles) ----
  sim::Cycles arrival = 0;
  sim::Cycles admitted = 0;     // popped from the queue, KV reserved
  sim::Cycles first_token = 0;  // final prompt chunk egress (TTFT reference)
  sim::Cycles completed = 0;
  sim::Cycles last_token = 0;     // previous host-visible token (jitter base)
  sim::Cycles max_token_gap = 0;  // worst inter-token gap observed
  bool emitted_token = false;     // last_token is valid

  // ---- Progress ----
  std::uint32_t prompt_done = 0;   // prefill cursor: prompt tokens processed
  std::uint32_t decoded = 0;       // decode steps completed (host-visible)
  std::uint32_t prefill_chunks = 0;  // prefill steps taken (1 == unchunked)
  KvBlockList kv;                  // grown-on-demand KV block holdings

  // ---- Content-addressed prefix cache (ServingConfig::prefix_cache) ----
  /// References this request holds on shared cache blocks; empty when the
  /// cache is off or missed. Every mutation goes through PrefixCache
  /// (acquire/commit/release) so refcounts cannot drift. `kv` above covers
  /// only positions >= cache.owned_tokens.
  CacheBinding cache;
  /// Admission-time hit size (prefill tokens skipped), kept after the
  /// binding is released so RequestRecord can report it. A preemption
  /// forfeits the hit (the re-prefill runs privately) but the admission
  /// figure stands — it is what admission actually saved.
  std::uint32_t cached_prefix = 0;

  // ---- Preemption / recompute ----
  /// Decode tokens folded back into the prefill phase by the last
  /// preemption: their KV was dropped, so the prefill target stretches to
  /// shape.prefill + recompute_decoded and chunked prefill rebuilds it.
  std::uint32_t recompute_decoded = 0;
  std::uint32_t preempt_count = 0;  // times this request was preempted
  bool recovering = false;  // preempted and not yet re-prefilled

  /// Prompt tokens the prefill phase must push before decoding (re)starts:
  /// the prompt itself plus any decode KV a preemption dropped.
  std::uint32_t prefill_target() const {
    return shape.prefill + recompute_decoded;
  }
  /// True once the whole prefill target has been pushed (possibly across
  /// several chunked-prefill iterations); only then does the request
  /// decode.
  bool prefilled() const { return prompt_done >= prefill_target(); }
  /// Prompt tokens still to push — what the scheduler chunks.
  std::uint32_t prompt_remaining() const {
    return prefill_target() - prompt_done;
  }

  /// KV length already cached; a continuation chunk resumes from here.
  /// During a post-preemption re-prefill the already-emitted decode tokens
  /// are part of `prompt_done`, not double-counted via `decoded`.
  std::uint32_t kv_len() const {
    return prompt_done + decoded - recompute_decoded;
  }
  bool finished() const { return prefilled() && decoded >= shape.decode; }

  // ---- Per-iteration slot, filled by the scheduler before grant.set() ----
  sim::Cycles step_offset = 0;  // pipeline turn within the iteration
  sim::Cycles step_cycles = 0;  // pipeline occupancy of this step
  /// Prompt tokens granted this turn (a prefill chunk); 0 == decode step.
  std::uint32_t step_tokens = 0;
  /// Cycles from this member's pipeline egress to the host-visible batch
  /// egress: the rest of the batch draining, plus the PCIe sync the
  /// iteration pays once. Timestamps (TTFT, completion) are taken after
  /// this wait — the token does not exist for the host until then.
  sim::Cycles post_step_cycles = 0;
  sim::CountdownLatch* latch = nullptr;  // batch barrier of the iteration

  sim::Signal grant;  // one set() == one iteration turn
  sim::Signal done;   // completion/rejection broadcast (closed-loop clients)
};

}  // namespace looplynx::serve
