// Code-generation crossover study: sweeps the prompt/generation mix to map
// where the A100's batched prefill beats LoopLynx's token-serial pipeline
// and where the dataflow accelerator takes over (paper Fig. 8's [128:32]
// inversion, explored as a full surface).
//
//   ./codegen_crossover [--nodes=2] [--stride=16]
#include <iostream>
#include <vector>

#include "baseline/gpu_a100.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(cli.get_int_or("nodes", 2));
  const model::ModelConfig gpt2 = model::gpt2_medium();
  core::RunOptions opt;
  opt.token_sample_stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 16));

  const baseline::A100Model gpu(gpt2);
  core::System sys(core::ArchConfig::nodes(nodes), gpt2);

  const std::vector<std::uint32_t> prompts{16, 32, 64, 128, 256};
  const std::vector<std::uint32_t> gens{16, 32, 64, 128, 256, 512};

  util::Table t("Speed-up of LoopLynx " + std::to_string(nodes) +
                "-node over A100 (values > 1.00x: FPGA wins)");
  std::vector<std::string> header{"prompt \\ gen"};
  for (auto g : gens) header.push_back(std::to_string(g));
  t.set_header(header);

  std::uint32_t crossover_gen_at_128 = 0;
  for (std::uint32_t p : prompts) {
    std::vector<std::string> row{std::to_string(p)};
    for (std::uint32_t g : gens) {
      const double fpga_ms = sys.run(p, g, opt).total_ms;
      const double gpu_ms = gpu.request_seconds(p, g) * 1e3;
      const double speedup = gpu_ms / fpga_ms;
      row.push_back(util::fmt_fixed(speedup, 2) + "x");
      if (p == 128 && speedup >= 1.0 && crossover_gen_at_128 == 0) {
        crossover_gen_at_128 = g;
      }
    }
    t.add_row(row);
  }
  t.render(std::cout);

  std::cout << "\nAt a 128-token prompt the FPGA overtakes the GPU once the "
               "generation length reaches ~"
            << (crossover_gen_at_128 ? std::to_string(crossover_gen_at_128)
                                     : std::string(">512"))
            << " tokens\n(paper: A100 wins [128:32]; LoopLynx wins all "
               "[*:512] settings).\n";
  return 0;
}
