// DMA engine: streams weight datapacks from an HBM channel into on-chip
// FIFOs in burst mode (paper Fig. 6(a)).
//
// The engine reads `pack_bytes` datapacks (n_group x 8-bit, 32 B for the
// paper's configuration) and forwards a descriptor per block into the
// attached stream, overlapping HBM bursts with downstream compute.
#pragma once

#include <cstdint>
#include <string>

#include "hw/hbm.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/task.hpp"

namespace looplynx::hw {

/// Descriptor of a streamed block of weight data (timing only; functional
/// payloads travel in the functional accelerator, not the timing model).
struct DmaBlock {
  std::uint64_t bytes = 0;
  std::uint32_t block_index = 0;
  bool last = false;
};

struct DmaEngineConfig {
  /// Datapack width streamed per cycle (paper: n_group x 8 bit = 32 B).
  std::uint32_t pack_bytes = 32;
  /// Minimum burst size the engine issues to HBM to keep efficiency high.
  std::uint64_t min_burst_bytes = 4096;
};

class DmaEngine {
 public:
  DmaEngine(sim::Engine& engine, HbmChannel& channel, DmaEngineConfig config,
            std::string name = "dma")
      : engine_(&engine),
        channel_(&channel),
        config_(config),
        name_(std::move(name)) {}

  /// Streams `total_bytes` from HBM in `num_blocks` equal blocks, pushing a
  /// DmaBlock descriptor into `out` as each block lands on chip. The HBM
  /// burst for block i+1 overlaps the consumer of block i.
  sim::Task stream_blocks(std::uint64_t total_bytes, std::uint32_t num_blocks,
                          sim::Fifo<DmaBlock>& out);

  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  const DmaEngineConfig& config() const noexcept { return config_; }
  HbmChannel& channel() noexcept { return *channel_; }
  const std::string& name() const noexcept { return name_; }

 private:
  sim::Engine* engine_;
  HbmChannel* channel_;
  DmaEngineConfig config_;
  std::string name_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace looplynx::hw
