// Iteration-level continuous-batching scheduler (the vLLM scheduling model
// adapted to a single time-shared LoopLynx pipeline).
//
// Every iteration the scheduler picks a batch of token-steps from the
// admitted (runnable) requests, bounded both by max_batch members and by a
// per-iteration *token budget* (max_tokens_per_iter): a decode step costs
// one budget token, a prefill chunk costs as many as it pushes. Batch
// members occupy the pipeline back to back within the iteration, and the
// per-token host synchronization (PCIe turnaround) is paid once per
// iteration instead of once per token — that amortization is the throughput
// win of batching on this architecture.
//
// Policies:
//  - kPrefillPriority: new requests prefill before queued decodes run, and
//    a prompt always runs whole. Minimizes TTFT and drains the admission
//    queue fast, at the cost of decode-latency jitter when a long prompt
//    lands mid-stream.
//  - kDecodePriority: in-flight decodes go first; whole-prompt prefills
//    fill leftover batch slots. Smooths per-token latency for running
//    streams, at the cost of TTFT under load.
//  - kChunkedMixed: decodes go first, then the remaining token budget is
//    spent on prefill *chunks* — a long prompt is split across iterations
//    (Request::prompt_done is the cursor) so it co-schedules with running
//    decodes instead of stalling them for a whole prompt. Partially
//    prefilled prompts outrank fresh ones, so the head prompt finishes
//    before the next starts (chunks do not round-robin across prompts).
//    Requires a nonzero max_tokens_per_iter to actually chunk; with
//    budget 0 it degenerates to decode-priority with whole prompts. Like
//    decode priority it trades TTFT for smooth inter-token latency: when
//    running decode streams fill max_batch or the budget, waiting prompts
//    stall, so size max_batch above the expected concurrent-stream count.
//
// Invariants:
//  - select() is a pure function of (config, runnable order, request
//    progress): no randomness, no clock reads — the determinism the
//    byte-identical sweep gate and the fleet's routing reproducibility
//    both build on.
//  - No starvation by construction: within each class FIFO order is
//    preserved, a budget-blocked head prompt cannot be overtaken by
//    younger prompts, and a prompt larger than the whole budget runs
//    over-budget as the iteration's only prompt work.
//  - Livelock-freedom of preemption (PreemptPolicy::kRecomputeYoungest)
//    additionally requires the scheduler loop's rules — age-ordered
//    decode-only eviction, re-prefills wait, admissions pause while a
//    victim recovers (serve/replica.cpp) — on top of these ordering
//    guarantees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/preempt.hpp"
#include "serve/request.hpp"
#include "sim/engine.hpp"

namespace looplynx::serve {

enum class BatchPolicy : std::uint8_t {
  kPrefillPriority,
  kDecodePriority,
  kChunkedMixed,
};

/// CLI-facing policy names ("prefill" | "decode" | "chunked"), shared by
/// the bench and example surfaces so their flags cannot drift. Throws
/// std::invalid_argument on an unknown name.
BatchPolicy parse_batch_policy(const std::string& name);
const char* batch_policy_name(BatchPolicy policy);

/// Default --chunk-tokens for the CLI surfaces: kChunkedMixed cannot chunk
/// without a budget, so it gets a useful one; the whole-prompt policies
/// stay unbounded (the pre-chunking behavior).
inline std::uint32_t default_chunk_tokens(BatchPolicy policy) {
  return policy == BatchPolicy::kChunkedMixed ? 64 : 0;
}

struct SchedulerConfig {
  std::uint32_t max_batch = 8;      // token-steps per iteration
  /// Token budget per iteration: decode == 1 token, prefill chunk == its
  /// token count. 0 == unbounded (whole prompts, pure step-count limit —
  /// the pre-chunking behavior). Under the whole-prompt policies prompts
  /// keep FIFO order against the budget: a prompt that fits the budget
  /// but not this iteration's leftover waits (younger prompts cannot
  /// overtake it), and one larger than the whole budget runs over budget
  /// as the iteration's only prompt work, so neither can starve.
  std::uint32_t max_tokens_per_iter = 0;
  std::uint32_t max_in_flight = 64; // admitted requests resident at once
  std::uint32_t queue_capacity = 256;  // admission queue bound (shedding)
  BatchPolicy policy = BatchPolicy::kPrefillPriority;
  /// KV pressure response: kNone = whole-footprint reservation at
  /// admission (no mid-flight eviction, the conservative default);
  /// kRecomputeYoungest = prompt-only admission with scheduler-driven
  /// preempt-and-recompute when decode growth drains the block pool.
  PreemptPolicy preempt = PreemptPolicy::kNone;
  /// Host-side batch assembly cost added to every iteration, on top of the
  /// per-stage scheduler overhead already inside the node model.
  sim::Cycles iteration_overhead_cycles = 0;
  /// Batched prefill weight sharing: an iteration's co-scheduled prefill
  /// chunks share each weight-stream pass the way the decode group does
  /// (core::StepCostModel::prefill_group_cycles), instead of each chunk
  /// re-streaming the full weight set. Off by default: the pricing change
  /// moves every downstream timestamp, so runs opt in explicitly.
  bool share_prefill_weights = false;
};

/// One selected token-step: a decode (prompt_tokens == 0) or a prefill
/// chunk of prompt_tokens starting at the request's prefill cursor.
struct ScheduledStep {
  Request* request = nullptr;
  std::uint32_t prompt_tokens = 0;

  bool is_prefill() const { return prompt_tokens > 0; }
};

/// What one scheduler iteration did — the audit trail the interleaving
/// tests and utilization metrics read.
struct IterationRecord {
  sim::Cycles start = 0;
  sim::Cycles span = 0;  // overhead + batch pipeline occupancy + host sync
  std::uint32_t prefills = 0;       // prefill-chunk members
  std::uint32_t decodes = 0;
  std::uint32_t prompt_tokens = 0;  // prompt tokens pushed this iteration

  std::uint32_t batch_size() const { return prefills + decodes; }
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  const SchedulerConfig& config() const { return config_; }

  /// Selects this iteration's batch from the class-indexed ready pool
  /// (admitted requests not currently mid-step) into `batch`, which is
  /// cleared first and reused across iterations so steady-state selection
  /// never allocates. Honors the policy, max_batch and the token budget.
  /// Selected requests are unlinked from `ready`; relative FIFO order
  /// within each class is preserved. Each selection pass walks only its
  /// own class list, so the cost is O(batch), not O(ready size).
  void select(ReadyQueue& ready, std::vector<ScheduledStep>& batch) const;

  /// Vector-based convenience overload (tests / offline analysis): same
  /// selection semantics; selected requests are removed from `runnable`.
  std::vector<ScheduledStep> select(std::vector<Request*>& runnable) const;

  /// Folds one finished iteration into the aggregate counters. The hot
  /// path does not keep per-iteration records — a million-request sweep
  /// runs hundreds of thousands of iterations, and the only downstream
  /// consumers are the count and the mean batch size.
  void record(const IterationRecord& record) {
    ++iteration_count_;
    batch_members_ += record.batch_size();
  }
  std::uint64_t iteration_count() const { return iteration_count_; }

  double mean_batch_size() const;

 private:
  SchedulerConfig config_;
  std::uint64_t iteration_count_ = 0;
  std::uint64_t batch_members_ = 0;  // sum of batch_size() over iterations
};

}  // namespace looplynx::serve
