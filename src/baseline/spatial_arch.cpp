#include "baseline/spatial_arch.hpp"

#include <algorithm>

namespace looplynx::baseline {

SpatialModel::SpatialModel(const model::ModelConfig& model,
                           SpatialConfig config)
    : model_(model), config_(config) {}

double SpatialModel::matrix_stage_ms(double rows, double cols) const {
  // Each matrix kernel group owns 1/groups of the HBM ports and MAC lanes.
  const double bw = config_.memory_bandwidth_bps *
                    config_.memory_efficiency /
                    config_.matrix_kernel_groups;
  const double lanes = static_cast<double>(config_.total_mac_lanes) /
                       config_.matrix_kernel_groups;
  const double weight_bytes = rows * cols * config_.bytes_per_weight;
  const double mem_ms = weight_bytes / bw * 1e3;
  const double compute_ms =
      rows * cols / lanes / config_.frequency_hz * 1e3;
  // Within a kernel, streaming overlaps memory and compute.
  return std::max(mem_ms, compute_ms);
}

double SpatialModel::decode_token_ms(std::uint32_t seq) const {
  const double d = model_.d_model;
  const double f = model_.d_ff;
  const double freq = config_.frequency_hz;

  double per_layer_ms = 0;
  per_layer_ms += matrix_stage_ms(3 * d, d);  // QKV
  per_layer_ms += matrix_stage_ms(d, d);      // proj
  per_layer_ms += matrix_stage_ms(f, d);      // FC1
  per_layer_ms += matrix_stage_ms(d, f);      // FC2

  // Attention kernels and vector operators at their own fabric slices.
  const double attn_elems =
      model_.n_head * 2.0 * seq * model_.head_dim();
  per_layer_ms += attn_elems / config_.attention_lanes / freq * 1e3;
  const double vector_elems = 2 * d + model_.n_head * 2.0 * seq + f + 2 * d;
  per_layer_ms += vector_elems / config_.vector_lanes / freq * 1e3;

  // Stage-crossing buffers between ~8 chained kernels.
  per_layer_ms += 8.0 * config_.stage_latency_cycles / freq * 1e3;

  return per_layer_ms * model_.n_layer;
}

double SpatialModel::prefill_token_ms() const {
  const double d = model_.d_model;
  const double f = model_.d_ff;
  // Pipeline full: per-token cost = the slowest matrix stage (FC1/FC2).
  double bottleneck = 0;
  bottleneck = std::max(bottleneck, matrix_stage_ms(3 * d, d));
  bottleneck = std::max(bottleneck, matrix_stage_ms(f, d));
  // All layers' instances of the bottleneck stage share the fabric slice,
  // so the per-token service time scales with depth.
  return bottleneck * model_.n_layer / config_.matrix_kernel_groups;
}

double SpatialModel::avg_token_ms(std::uint32_t prefill_tokens,
                                  std::uint32_t decode_tokens) const {
  double total = prefill_tokens * prefill_token_ms();
  for (std::uint32_t i = 0; i < decode_tokens; ++i) {
    total += decode_token_ms(prefill_tokens + i + 1);
  }
  const std::uint32_t n = prefill_tokens + decode_tokens;
  return n > 0 ? total / n : 0;
}

}  // namespace looplynx::baseline
