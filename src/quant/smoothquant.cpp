#include "quant/smoothquant.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace looplynx::quant {

CalibrationStats::CalibrationStats(const model::ModelConfig& config)
    : config_(config) {}

void CalibrationStats::observe(const char* tap, std::uint32_t layer,
                               std::span<const float> x) {
  auto& per_layer = channel_max_[tap];
  if (per_layer.empty()) per_layer.resize(config_.n_layer);
  auto& maxima = per_layer[layer];
  if (maxima.empty()) maxima.assign(x.size(), 0.0f);
  assert(maxima.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    maxima[i] = std::max(maxima[i], std::abs(x[i]));
  }
  ++samples_;
}

std::span<const float> CalibrationStats::channel_absmax(
    const std::string& tap, std::uint32_t layer) const {
  const auto it = channel_max_.find(tap);
  if (it == channel_max_.end() || layer >= it->second.size()) return {};
  return it->second[layer];
}

float CalibrationStats::tensor_absmax(const std::string& tap,
                                      std::uint32_t layer) const {
  float m = 0.0f;
  for (float v : channel_absmax(tap, layer)) m = std::max(m, v);
  return m;
}

CalibrationStats calibrate(
    const model::Gpt2Weights& weights,
    std::span<const std::uint32_t> calibration_tokens) {
  CalibrationStats stats(weights.config);
  model::Gpt2Reference ref(weights);
  ref.set_observer([&stats](const char* tap, std::uint32_t layer,
                            std::span<const float> x) {
    stats.observe(tap, layer, x);
  });
  for (std::uint32_t token : calibration_tokens) {
    (void)ref.forward_token(token);
  }
  return stats;
}

std::vector<float> smoothing_factors(std::span<const float> act_absmax,
                                     std::span<const float> weight_col_absmax,
                                     float alpha) {
  assert(act_absmax.size() == weight_col_absmax.size());
  std::vector<float> s(act_absmax.size(), 1.0f);
  for (std::size_t j = 0; j < s.size(); ++j) {
    const float a = std::max(act_absmax[j], 1e-5f);
    const float w = std::max(weight_col_absmax[j], 1e-5f);
    const float factor =
        std::pow(a, alpha) / std::pow(w, 1.0f - alpha);
    s[j] = std::clamp(factor, 1e-2f, 1e2f);
  }
  return s;
}

std::vector<float> weight_column_absmax(const model::Tensor& w) {
  std::vector<float> maxima(w.cols(), 0.0f);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const auto row = w.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      maxima[c] = std::max(maxima[c], std::abs(row[c]));
    }
  }
  return maxima;
}

void apply_smoothing(model::Tensor& w, std::span<float> ln_gain,
                     std::span<float> ln_bias,
                     std::span<const float> factors) {
  assert(w.cols() == factors.size());
  assert(ln_gain.size() == factors.size());
  assert(ln_bias.size() == factors.size());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    auto row = w.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] *= factors[c];
  }
  for (std::size_t j = 0; j < factors.size(); ++j) {
    ln_gain[j] /= factors[j];
    ln_bias[j] /= factors[j];
  }
}

}  // namespace looplynx::quant
