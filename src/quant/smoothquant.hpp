// SmoothQuant calibration and scale migration (Xiao et al., ICML 2023).
//
// Activation outliers make per-tensor int8 activation quantization lossy.
// SmoothQuant migrates difficulty from activations to weights: for a linear
// with input x and weight W, pick per-input-channel factors
//     s_j = max|x_j|^alpha / max|W_:,j|^(1-alpha)
// and rewrite  y = (x / s) (W * s) — numerically identical in fp32, but
// x/s is much friendlier to quantize. For LN-fed linears (qkv, fc1) the
// division folds into the preceding LayerNorm's affine parameters, exactly
// as torch-int does on the GPU baseline.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "model/gpt2_ref.hpp"
#include "model/weights.hpp"

namespace looplynx::quant {

/// Per-tap, per-layer activation statistics gathered on a calibration run.
class CalibrationStats {
 public:
  explicit CalibrationStats(const model::ModelConfig& config);

  /// Observes one activation vector (used as a Gpt2Reference tap observer).
  void observe(const char* tap, std::uint32_t layer,
               std::span<const float> x);

  /// Per-element (channel) absolute maxima for a tap/layer. Empty if the tap
  /// was never observed.
  std::span<const float> channel_absmax(const std::string& tap,
                                        std::uint32_t layer) const;

  /// Per-tensor absolute maximum for a tap/layer (0 if never observed).
  float tensor_absmax(const std::string& tap, std::uint32_t layer) const;

  std::uint64_t samples() const { return samples_; }

 private:
  model::ModelConfig config_;
  // key: tap name; value: [n_layer][channels] running absmax.
  std::map<std::string, std::vector<std::vector<float>>> channel_max_;
  std::uint64_t samples_ = 0;
};

/// Runs `calibration_tokens` through a reference model instance and collects
/// activation stats.
CalibrationStats calibrate(const model::Gpt2Weights& weights,
                           std::span<const std::uint32_t> calibration_tokens);

/// SmoothQuant migration factors for one linear layer.
/// `act_absmax` and `weight_col_absmax` are per-input-channel maxima.
std::vector<float> smoothing_factors(std::span<const float> act_absmax,
                                     std::span<const float> weight_col_absmax,
                                     float alpha = 0.5f);

/// Per-input-channel |W| column maxima of a [out x in] weight matrix.
std::vector<float> weight_column_absmax(const model::Tensor& w);

/// Applies migration in place: W[:,j] *= s_j; ln_gain[j] /= s_j;
/// ln_bias[j] /= s_j. After this, the LN output (the linear's input) is
/// divided by s while the product W x is unchanged in exact arithmetic.
void apply_smoothing(model::Tensor& w, std::span<float> ln_gain,
                     std::span<float> ln_bias, std::span<const float> factors);

}  // namespace looplynx::quant
