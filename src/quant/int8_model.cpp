#include "quant/int8_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "model/ops.hpp"

namespace looplynx::quant {

namespace {

/// Tensor absmax of a tap after per-channel smoothing division.
float smoothed_tensor_absmax(std::span<const float> channel_absmax,
                             std::span<const float> factors) {
  assert(channel_absmax.size() == factors.size());
  float m = 0.0f;
  for (std::size_t j = 0; j < channel_absmax.size(); ++j) {
    m = std::max(m, channel_absmax[j] / factors[j]);
  }
  return m;
}

/// Max over a segment [begin, end) of per-channel maxima.
float segment_absmax(std::span<const float> channel_absmax, std::size_t begin,
                     std::size_t end) {
  float m = 0.0f;
  for (std::size_t j = begin; j < end && j < channel_absmax.size(); ++j) {
    m = std::max(m, channel_absmax[j]);
  }
  return m;
}

}  // namespace

Gpt2Int8Weights Gpt2Int8Weights::build(const model::Gpt2Weights& weights,
                                       const CalibrationStats& stats,
                                       float alpha) {
  const model::ModelConfig& cfg = weights.config;
  Gpt2Int8Weights out;
  out.config = cfg;
  out.wte = weights.wte;
  out.wpe = weights.wpe;
  out.lnf_gain = weights.lnf_gain;
  out.lnf_bias = weights.lnf_bias;
  out.blocks.reserve(cfg.n_layer);

  for (std::uint32_t l = 0; l < cfg.n_layer; ++l) {
    const model::BlockWeights& src = weights.blocks[l];
    Int8Block blk;
    blk.ln1_gain = src.ln1_gain;
    blk.ln1_bias = src.ln1_bias;
    blk.ln2_gain = src.ln2_gain;
    blk.ln2_bias = src.ln2_bias;

    // --- qkv: SmoothQuant-fold into ln1. ---
    model::Tensor w_qkv = src.w_qkv;
    const auto ln1_absmax = stats.channel_absmax("ln1_out", l);
    std::vector<float> qkv_factors(cfg.d_model, 1.0f);
    if (!ln1_absmax.empty()) {
      qkv_factors = smoothing_factors(ln1_absmax,
                                      weight_column_absmax(w_qkv), alpha);
      apply_smoothing(w_qkv, blk.ln1_gain.flat(), blk.ln1_bias.flat(),
                      qkv_factors);
      blk.ln1_out_scale =
          scale_for_absmax(smoothed_tensor_absmax(ln1_absmax, qkv_factors));
    }
    blk.qkv = QuantizedLinear::from_float(w_qkv, src.b_qkv.flat(),
                                          blk.ln1_out_scale);

    // --- q/k/v activation scales from the qkv_out tap. ---
    const auto qkv_absmax = stats.channel_absmax("qkv_out", l);
    if (!qkv_absmax.empty()) {
      blk.q_scale =
          scale_for_absmax(segment_absmax(qkv_absmax, 0, cfg.d_model));
      blk.k_scale = scale_for_absmax(
          segment_absmax(qkv_absmax, cfg.d_model, 2ULL * cfg.d_model));
      blk.v_scale = scale_for_absmax(segment_absmax(
          qkv_absmax, 2ULL * cfg.d_model, 3ULL * cfg.d_model));
    }

    // --- proj: plain static quantization on the attention output. ---
    blk.attn_out_scale =
        scale_for_absmax(stats.tensor_absmax("attn_out", l));
    blk.proj = QuantizedLinear::from_float(src.w_proj, src.b_proj.flat(),
                                           blk.attn_out_scale);

    // --- fc1: SmoothQuant-fold into ln2. ---
    model::Tensor w_fc1 = src.w_fc1;
    const auto ln2_absmax = stats.channel_absmax("ln2_out", l);
    if (!ln2_absmax.empty()) {
      const auto fc1_factors = smoothing_factors(
          ln2_absmax, weight_column_absmax(w_fc1), alpha);
      apply_smoothing(w_fc1, blk.ln2_gain.flat(), blk.ln2_bias.flat(),
                      fc1_factors);
      blk.ln2_out_scale =
          scale_for_absmax(smoothed_tensor_absmax(ln2_absmax, fc1_factors));
    }
    blk.fc1 = QuantizedLinear::from_float(w_fc1, src.b_fc1.flat(),
                                          blk.ln2_out_scale);

    // --- fc2: plain static quantization on the GELU output. ---
    blk.gelu_scale = scale_for_absmax(stats.tensor_absmax("gelu_out", l));
    blk.fc2 = QuantizedLinear::from_float(src.w_fc2, src.b_fc2.flat(),
                                          blk.gelu_scale);

    out.blocks.push_back(std::move(blk));
  }
  return out;
}

Gpt2Int8Weights Gpt2Int8Weights::build_with_calibration(
    const model::Gpt2Weights& weights,
    std::span<const std::uint32_t> calibration_tokens, float alpha) {
  const CalibrationStats stats = calibrate(weights, calibration_tokens);
  return build(weights, stats, alpha);
}

std::uint64_t Gpt2Int8Weights::weight_bytes_per_token() const {
  std::uint64_t bytes = 0;
  for (const Int8Block& b : blocks) {
    bytes += b.qkv.weight_bytes() + b.proj.weight_bytes() +
             b.fc1.weight_bytes() + b.fc2.weight_bytes();
  }
  return bytes;
}

namespace stages {

void ln_quant(std::span<const float> x, const model::Tensor& gain,
              const model::Tensor& bias, float scale,
              std::span<float> norm_tmp, std::span<std::int8_t> x_q) {
  assert(norm_tmp.size() == x.size());
  std::copy(x.begin(), x.end(), norm_tmp.begin());
  model::layer_norm(norm_tmp, gain.flat(), bias.flat());
  quantize(norm_tmp, scale, x_q);
}

void quantize_qkv_heads(const model::ModelConfig& cfg, const Int8Block& blk,
                        std::span<const float> qkv_fp, std::uint32_t layer,
                        std::uint32_t head_begin, std::uint32_t head_end,
                        model::KvCache8& cache, std::span<std::int8_t> q_q) {
  const std::uint32_t hd = cfg.head_dim();
  std::vector<std::int8_t> k_q(hd), v_q(hd);
  for (std::uint32_t h = head_begin; h < head_end; ++h) {
    const auto q = qkv_fp.subspan(static_cast<std::size_t>(h) * hd, hd);
    const auto k =
        qkv_fp.subspan(cfg.d_model + static_cast<std::size_t>(h) * hd, hd);
    const auto v = qkv_fp.subspan(
        2ULL * cfg.d_model + static_cast<std::size_t>(h) * hd, hd);
    quantize(q, blk.q_scale,
             q_q.subspan(static_cast<std::size_t>(h - head_begin) * hd, hd));
    quantize(k, blk.k_scale, k_q);
    quantize(v, blk.v_scale, v_q);
    cache.append(layer, h, k_q, v_q);
  }
}

void attention_heads(const model::ModelConfig& cfg, const Int8Block& blk,
                     std::span<const std::int8_t> q_q, std::uint32_t layer,
                     std::uint32_t head_begin, std::uint32_t head_end,
                     const model::KvCache8& cache, std::uint32_t cur_pos,
                     std::span<float> out) {
  const std::uint32_t hd = cfg.head_dim();
  const float score_scale = blk.q_scale * blk.k_scale /
                            std::sqrt(static_cast<float>(hd));
  std::vector<float> scores(cur_pos + 1);
  std::vector<std::int8_t> probs_q(cur_pos + 1);

  for (std::uint32_t h = head_begin; h < head_end; ++h) {
    const std::uint32_t local = h - head_begin;
    const auto q = q_q.subspan(static_cast<std::size_t>(local) * hd, hd);
    // Scores over cached positions [0, cur_pos] (mask unit: only forward
    // attention exists in the cache).
    for (std::uint32_t p = 0; p <= cur_pos; ++p) {
      scores[p] =
          static_cast<float>(dot_i8(q, cache.key(layer, h, p))) * score_scale;
    }
    model::softmax(scores);
    for (std::uint32_t p = 0; p <= cur_pos; ++p) {
      probs_q[p] = quantize_value(scores[p], kProbScale);
    }
    // Token mixing on int8 probabilities and int8 cached values.
    std::span<float> head_out =
        out.subspan(static_cast<std::size_t>(local) * hd, hd);
    for (std::uint32_t i = 0; i < hd; ++i) {
      std::int32_t acc = 0;
      for (std::uint32_t p = 0; p <= cur_pos; ++p) {
        acc += static_cast<std::int32_t>(probs_q[p]) *
               static_cast<std::int32_t>(cache.value(layer, h, p)[i]);
      }
      head_out[i] = static_cast<float>(acc) * kProbScale * blk.v_scale;
    }
  }
}

void gelu_quant(std::span<float> x, float scale,
                std::span<std::int8_t> x_q) {
  model::gelu(x);
  quantize(x, scale, x_q);
}

}  // namespace stages

Gpt2Int8::Gpt2Int8(const Gpt2Int8Weights& weights)
    : weights_(&weights), cache_(weights.config) {}

std::vector<float> Gpt2Int8::forward_token(std::uint32_t token_id) {
  const model::ModelConfig& cfg = weights_->config;
  assert(token_id < cfg.vocab_size);
  assert(cache_.seq_len() < cfg.max_seq_len);

  std::vector<float> x(cfg.d_model);
  const auto tok = weights_->wte.row(token_id);
  const auto pos = weights_->wpe.row(cache_.seq_len());
  for (std::uint32_t i = 0; i < cfg.d_model; ++i) x[i] = tok[i] + pos[i];

  std::vector<float> norm(cfg.d_model);
  std::vector<std::int8_t> x_q(cfg.d_model);
  std::vector<float> qkv_fp(3ULL * cfg.d_model);
  std::vector<std::int8_t> q_q(cfg.d_model);
  std::vector<float> attn_out(cfg.d_model);
  std::vector<std::int8_t> attn_q(cfg.d_model);
  std::vector<float> proj(cfg.d_model);
  std::vector<float> ff1(cfg.d_ff);
  std::vector<std::int8_t> ff1_q(cfg.d_ff);
  std::vector<float> ff2(cfg.d_model);

  const std::uint32_t cur = cache_.seq_len();
  for (std::uint32_t l = 0; l < cfg.n_layer; ++l) {
    const Int8Block& blk = weights_->blocks[l];

    stages::ln_quant(x, blk.ln1_gain, blk.ln1_bias, blk.ln1_out_scale, norm,
                     x_q);
    blk.qkv.forward(x_q, qkv_fp);
    stages::quantize_qkv_heads(cfg, blk, qkv_fp, l, 0, cfg.n_head, cache_,
                               q_q);
    stages::attention_heads(cfg, blk, q_q, l, 0, cfg.n_head, cache_, cur,
                            attn_out);
    quantize(attn_out, blk.attn_out_scale, attn_q);
    blk.proj.forward(attn_q, proj);
    model::add_inplace(x, proj);

    stages::ln_quant(x, blk.ln2_gain, blk.ln2_bias, blk.ln2_out_scale, norm,
                     x_q);
    blk.fc1.forward(x_q, ff1);
    stages::gelu_quant(ff1, blk.gelu_scale, ff1_q);
    blk.fc2.forward(ff1_q, ff2);
    model::add_inplace(x, ff2);
  }

  cache_.advance();
  model::layer_norm(x, weights_->lnf_gain.flat(), weights_->lnf_bias.flat());
  return x;
}

std::vector<float> Gpt2Int8::logits(std::span<const float> hidden) const {
  std::vector<float> out(weights_->config.vocab_size);
  model::matvec(weights_->wte, hidden, out);
  return out;
}

std::uint32_t Gpt2Int8::argmax_token(std::span<const float> hidden) const {
  const std::vector<float> lg = logits(hidden);
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < lg.size(); ++i) {
    if (lg[i] > lg[best]) best = i;
  }
  return best;
}

std::vector<std::uint32_t> Gpt2Int8::generate(
    std::span<const std::uint32_t> prompt, std::uint32_t num_tokens) {
  assert(!prompt.empty());
  std::vector<float> hidden;
  for (std::uint32_t t : prompt) hidden = forward_token(t);
  std::vector<std::uint32_t> generated;
  generated.reserve(num_tokens);
  for (std::uint32_t i = 0; i < num_tokens; ++i) {
    const std::uint32_t next = argmax_token(hidden);
    generated.push_back(next);
    if (i + 1 < num_tokens) hidden = forward_token(next);
  }
  return generated;
}

}  // namespace looplynx::quant
