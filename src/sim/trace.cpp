#include "sim/trace.hpp"

#include <algorithm>

namespace looplynx::sim {

void Trace::add(const std::string& category, Cycles begin, Cycles end) {
  if (end < begin) end = begin;
  totals_[category] += end - begin;
  if (keep_spans_) spans_.push_back(Span{category, begin, end});
}

void Trace::add_cycles(const std::string& category, Cycles cycles) {
  totals_[category] += cycles;
}

Cycles Trace::total(const std::string& category) const {
  const auto it = totals_.find(category);
  return it == totals_.end() ? 0 : it->second;
}

Cycles Trace::grand_total() const {
  Cycles sum = 0;
  for (const auto& [_, cycles] : totals_) sum += cycles;
  return sum;
}

double Trace::fraction(const std::string& category) const {
  const Cycles all = grand_total();
  if (all == 0) return 0.0;
  return static_cast<double>(total(category)) / static_cast<double>(all);
}

void Trace::clear() {
  totals_.clear();
  spans_.clear();
}

void Trace::merge(const Trace& other) {
  for (const auto& [category, cycles] : other.totals_) {
    totals_[category] += cycles;
  }
  if (keep_spans_) {
    spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  }
}

void Trace::print_summary(std::ostream& os) const {
  std::vector<std::pair<std::string, Cycles>> sorted(totals_.begin(),
                                                     totals_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const double all = static_cast<double>(grand_total());
  for (const auto& [category, cycles] : sorted) {
    const double pct = all > 0 ? 100.0 * static_cast<double>(cycles) / all : 0;
    os << "  " << category << ": " << cycles << " cycles (" << pct << "%)\n";
  }
}

void Trace::export_chrome_trace(std::ostream& os,
                                double frequency_hz) const {
  const double us_per_cycle = 1e6 / frequency_hz;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << span.category
       << "\",\"cat\":\"mdk\",\"ph\":\"X\",\"pid\":0,\"tid\":0"
       << ",\"ts\":" << static_cast<double>(span.begin) * us_per_cycle
       << ",\"dur\":"
       << static_cast<double>(span.end - span.begin) * us_per_cycle << "}";
  }
  os << "]}";
}

}  // namespace looplynx::sim
