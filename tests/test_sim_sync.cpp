// Tests for Mutex / Semaphore / Barrier / Signal primitives.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace looplynx::sim {
namespace {

Task hold_mutex(Engine& eng, Mutex& mu, int id, Cycles hold,
                std::vector<std::pair<int, Cycles>>& log) {
  co_await mu.lock();
  log.emplace_back(id, eng.now());
  co_await eng.delay(hold);
  mu.unlock();
}

TEST(MutexTest, ProvidesExclusionAndFifoOrder) {
  Engine eng;
  Mutex mu(eng);
  std::vector<std::pair<int, Cycles>> log;
  for (int i = 0; i < 4; ++i) eng.spawn(hold_mutex(eng, mu, i, 10, log));
  eng.run();
  ASSERT_EQ(log.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(log[i].first, i);  // arrival order preserved
    EXPECT_EQ(log[i].second, static_cast<Cycles>(10 * i));
  }
  EXPECT_FALSE(mu.locked());
}

TEST(MutexTest, UncontendedLockIsImmediate) {
  Engine eng;
  Mutex mu(eng);
  Cycles acquired_at = 99;
  struct P {
    static Task run(Engine& eng, Mutex& mu, Cycles& at) {
      co_await eng.delay(5);
      co_await mu.lock();
      at = eng.now();
      mu.unlock();
    }
  };
  eng.spawn(P::run(eng, mu, acquired_at));
  eng.run();
  EXPECT_EQ(acquired_at, 5u);
}

TEST(MutexTest, HandoffPreventsBarging) {
  Engine eng;
  Mutex mu(eng);
  std::vector<int> order;
  // P0 takes the lock; P1 queues at t=1; P2 tries at t=10 right when P0
  // releases. P1 must win (direct hand-off), then P2.
  struct Holder {
    static Task run(Engine& eng, Mutex& mu, std::vector<int>& order) {
      co_await mu.lock();
      order.push_back(0);
      co_await eng.delay(10);
      mu.unlock();
    }
  };
  struct Waiter {
    static Task run(Engine& eng, Mutex& mu, int id, Cycles arrive,
                    std::vector<int>& order) {
      co_await eng.delay(arrive);
      co_await mu.lock();
      order.push_back(id);
      mu.unlock();
    }
  };
  eng.spawn(Holder::run(eng, mu, order));
  eng.spawn(Waiter::run(eng, mu, 1, 1, order));
  eng.spawn(Waiter::run(eng, mu, 2, 10, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

Task acquire_release(Engine& eng, Semaphore& sem, Cycles hold, int& peak,
                     int& active) {
  co_await sem.acquire();
  ++active;
  peak = std::max(peak, active);
  co_await eng.delay(hold);
  --active;
  sem.release();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 3);
  int peak = 0;
  int active = 0;
  for (int i = 0; i < 12; ++i) {
    eng.spawn(acquire_release(eng, sem, 10, peak, active));
  }
  eng.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 3u);
  // 12 jobs, 3 at a time, 10 cycles each => 40 cycles.
  EXPECT_EQ(eng.now(), 40u);
}

TEST(SemaphoreTest, ReleaseWithoutWaitersIncrementsCount) {
  Engine eng;
  Semaphore sem(eng, 0);
  sem.release();
  sem.release();
  EXPECT_EQ(sem.available(), 2u);
}

Task barrier_participant(Engine& eng, Barrier& barrier, Cycles arrive,
                         std::vector<Cycles>& release_times) {
  co_await eng.delay(arrive);
  co_await barrier.arrive_and_wait();
  release_times.push_back(eng.now());
}

TEST(BarrierTest, ReleasesAllAtLastArrival) {
  Engine eng;
  Barrier barrier(eng, 3);
  std::vector<Cycles> times;
  eng.spawn(barrier_participant(eng, barrier, 5, times));
  eng.spawn(barrier_participant(eng, barrier, 20, times));
  eng.spawn(barrier_participant(eng, barrier, 11, times));
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  for (Cycles t : times) EXPECT_EQ(t, 20u);
  EXPECT_EQ(barrier.generation(), 1u);
}

Task barrier_loop(Engine& eng, Barrier& barrier, int rounds, Cycles step,
                  std::vector<Cycles>& times) {
  for (int r = 0; r < rounds; ++r) {
    co_await eng.delay(step);
    co_await barrier.arrive_and_wait();
    times.push_back(eng.now());
  }
}

TEST(BarrierTest, IsReusableAcrossRounds) {
  Engine eng;
  Barrier barrier(eng, 2);
  std::vector<Cycles> times;
  eng.spawn(barrier_loop(eng, barrier, 3, 5, times));   // fast participant
  eng.spawn(barrier_loop(eng, barrier, 3, 12, times));  // slow participant
  eng.run();
  ASSERT_EQ(times.size(), 6u);
  // Every round completes at the slow participant's schedule.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(times[2 * r], 12u * (r + 1));
    EXPECT_EQ(times[2 * r + 1], 12u * (r + 1));
  }
  EXPECT_EQ(barrier.generation(), 3u);
}

TEST(SignalTest, WaitersReleaseOnSet) {
  Engine eng;
  Signal sig(eng);
  std::vector<Cycles> times;
  struct Waiter {
    static Task run(Engine& eng, Signal& sig, std::vector<Cycles>& times) {
      co_await sig.wait();
      times.push_back(eng.now());
    }
  };
  struct Setter {
    static Task run(Engine& eng, Signal& sig) {
      co_await eng.delay(33);
      sig.set();
    }
  };
  eng.spawn(Waiter::run(eng, sig, times));
  eng.spawn(Waiter::run(eng, sig, times));
  eng.spawn(Setter::run(eng, sig));
  eng.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 33u);
  EXPECT_EQ(times[1], 33u);
}

TEST(SignalTest, WaitAfterSetCompletesImmediately) {
  Engine eng;
  Signal sig(eng);
  sig.set();
  Cycles at = 99;
  struct Waiter {
    static Task run(Engine& eng, Signal& sig, Cycles& at) {
      co_await eng.delay(7);
      co_await sig.wait();
      at = eng.now();
    }
  };
  eng.spawn(Waiter::run(eng, sig, at));
  eng.run();
  EXPECT_EQ(at, 7u);
}

TEST(SignalTest, ResetReArms) {
  Engine eng;
  Signal sig(eng);
  sig.set();
  EXPECT_TRUE(sig.is_set());
  sig.reset();
  EXPECT_FALSE(sig.is_set());
}

}  // namespace
}  // namespace looplynx::sim
