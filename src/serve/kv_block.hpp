// Paged KV-cache accounting for the serving fleet.
//
// Capacity is split into fixed-size token blocks (the vLLM paging model
// mapped onto the HBM pseudo-channels the architecture dedicates to the KV
// cache: arch.kv_channels x 256 MiB per node on the Alveo U50, int8
// per-token footprint from model::KvCacheT's layout). Each request owns a
// grown-on-demand KvBlockList instead of an up-front whole-footprint
// reservation: admission only needs the prompt's blocks, and decode blocks
// are allocated as tokens are emitted. When a grow finds no free block the
// caller decides what gives — the scheduler either leaves the request
// queued (admission backpressure) or preempts a victim
// (serve::PreemptPolicy::kRecomputeYoungest frees the victim's list and
// re-runs its KV as chunked prefill).
//
// Invariants:
//  - block_tokens == 1 makes the accounting token-granular — bit-identical
//    to the pre-paging whole-footprint KvSlotManager when combined with
//    PreemptPolicy::kNone, which is why it is the default everywhere a
//    sweep must stay byte-reproducible against older output.
//  - try_grow is all-or-nothing: on failure the list is untouched and the
//    stall is counted, so callers can retry after a release without
//    unwinding partial allocations.
//  - used_blocks() never underflows: release_all clamps an over-release
//    (always a caller bug) and counts it in over_release_events() instead
//    of wrapping free_blocks() — admission backpressure survives the bug.
//  - Fleets never share pools: each replica owns one KvBlockManager, so
//    free_blocks() is a per-replica signal (the kv-aware balancer
//    compares free_blocks() x block_tokens() across replicas).
#pragma once

#include <cstdint>

#include "core/arch_config.hpp"
#include "model/config.hpp"

namespace looplynx::serve {

/// One request's block holdings. `blocks` is how many fixed-size blocks the
/// manager has handed this request; `committed_tokens` is the high-water
/// token count the caller asked those blocks to cover — the gap between
/// `blocks * block_tokens` and `committed_tokens` is internal
/// fragmentation. Plain data so unit tests (and the Request struct) can own
/// one without any engine plumbing.
struct KvBlockList {
  std::uint32_t blocks = 0;
  std::uint32_t committed_tokens = 0;
};

class KvBlockManager {
 public:
  /// `budget_bytes_per_node` == 0 selects the architecture default:
  /// kv_channels x 256 MiB of HBM per node. `block_tokens` is the paging
  /// granularity; 1 == token-granular (exact legacy accounting).
  KvBlockManager(const core::ArchConfig& arch, const model::ModelConfig& model,
                 std::uint64_t budget_bytes_per_node = 0,
                 std::uint32_t block_tokens = 1);

  /// K + V bytes one token occupies on one node (int8, the node's share of
  /// the heads).
  std::uint64_t bytes_per_token_per_node() const { return bytes_per_token_; }

  std::uint32_t block_tokens() const { return block_tokens_; }
  std::uint32_t capacity_blocks() const { return capacity_blocks_; }
  /// Block-rounded token capacity (per node — the head-wise partition makes
  /// every node's occupancy identical).
  std::uint32_t capacity_tokens() const {
    return capacity_blocks_ * block_tokens_;
  }
  std::uint32_t used_blocks() const { return used_blocks_; }
  std::uint32_t free_blocks() const { return capacity_blocks_ - used_blocks_; }

  /// Blocks needed to cover `tokens` KV entries (ceiling division).
  std::uint32_t blocks_for(std::uint32_t tokens) const {
    return (tokens + block_tokens_ - 1) / block_tokens_;
  }

  /// A request whose lifetime footprint needs more blocks than exist can
  /// never run — callers must reject it instead of retrying (or
  /// preempting: evicting the whole fleet would still not make room).
  bool can_ever_fit(std::uint32_t tokens) const {
    return blocks_for(tokens) <= capacity_blocks_;
  }

  /// Grows `list` until it covers `tokens` KV entries. False (and a
  /// recorded stall) when the free pool runs short; the list is untouched
  /// on failure. Shrinking is not supported — a request's KV only grows
  /// until release_all.
  bool try_grow(KvBlockList& list, std::uint32_t tokens);

  /// Returns every block in `list` to the free pool (request completion or
  /// preemption) and resets the list. Releasing more blocks than the
  /// manager has outstanding is clamped (never underflows used_blocks_)
  /// and counted in over_release_events() — it always indicates a caller
  /// bug (a tampered or double-released list).
  void release_all(KvBlockList& list);

  // ---- Statistics for FleetMetrics ----
  std::uint32_t peak_used_blocks() const { return peak_used_blocks_; }
  std::uint64_t stall_events() const { return stall_events_; }
  std::uint64_t over_release_events() const { return over_release_events_; }
  /// Tokens the outstanding lists were asked to cover (KV actually live).
  std::uint64_t live_tokens() const { return live_tokens_; }
  /// Internal fragmentation right now: allocated-but-uncommitted tokens in
  /// the tail blocks of every outstanding list.
  std::uint64_t frag_tokens() const {
    return static_cast<std::uint64_t>(used_blocks_) * block_tokens_ -
           live_tokens_;
  }
  std::uint64_t peak_frag_tokens() const { return peak_frag_tokens_; }
  double occupancy() const {
    return capacity_blocks_ == 0
               ? 0.0
               : static_cast<double>(used_blocks_) / capacity_blocks_;
  }
  double peak_occupancy() const {
    return capacity_blocks_ == 0
               ? 0.0
               : static_cast<double>(peak_used_blocks_) / capacity_blocks_;
  }

 private:
  std::uint64_t bytes_per_token_ = 0;
  std::uint32_t block_tokens_ = 1;
  std::uint32_t capacity_blocks_ = 0;
  std::uint32_t used_blocks_ = 0;
  std::uint32_t peak_used_blocks_ = 0;
  std::uint64_t live_tokens_ = 0;
  std::uint64_t peak_frag_tokens_ = 0;
  std::uint64_t stall_events_ = 0;
  std::uint64_t over_release_events_ = 0;
};

}  // namespace looplynx::serve
