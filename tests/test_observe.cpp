// Tests for the serve-layer observability subsystem (DESIGN.md §7): the
// lifecycle event log's ordering invariants, the cycle-accounting tiling
// identity across the {batch policy x preempt policy x autoscale} matrix,
// byte-identical exports across repeated runs, the observed-run ==
// unobserved-run metrics guarantee, the host-layer breakdown exposure,
// and the CLI flag plumbing.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "host/serving.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "serve/autoscaler.hpp"
#include "serve/cli_flags.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

/// Cosim dimensions with a context window wide enough for whale shapes.
model::ModelConfig observe_model() {
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  return m;
}

ServingConfig base_config() {
  ServingConfig cfg;
  cfg.arch = core::ArchConfig::one_node();
  cfg.model = model::cosim_config();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = workload::Mix{"test",
                                  {{workload::make_scenario(8, 16), 0.5},
                                   {workload::make_scenario(16, 8), 0.3},
                                   {workload::make_scenario(4, 32), 0.2}}};
  cfg.traffic.num_requests = 24;
  cfg.traffic.arrival_rate_per_s = 200.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  return cfg;
}

/// Tight paged KV + saturating arrivals: the pool runs dry, so recompute
/// preemption demonstrably fires (pinned below).
ServingConfig preempting_config() {
  ServingConfig cfg = base_config();
  cfg.traffic.mix = workload::Mix{"decode-heavy",
                                  {{workload::make_scenario(8, 40), 0.7},
                                   {workload::make_scenario(4, 24), 0.3}}};
  cfg.traffic.num_requests = 96;
  cfg.traffic.arrival_rate_per_s = 400.0;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 16;
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  cfg.scheduler.max_in_flight = 8;
  cfg.kv_block_tokens = 4;
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 144 * probe.bytes_per_token_per_node();
  return cfg;
}

/// Bursty whale-heavy fleet that scales between 1 and 3 replicas.
FleetConfig autoscaled_config() {
  ServingConfig base = base_config();
  base.model = observe_model();
  base.traffic.mix = workload::Mix{"skewed",
                                   {{workload::make_scenario(8, 16), 0.7},
                                    {workload::make_scenario(192, 48), 0.3}}};
  base.traffic.num_requests = 48;
  base.traffic.arrival_rate_per_s = 600.0;
  base.traffic.process = ArrivalProcess::kBursty;
  base.traffic.burst_factor = 4.0;
  base.traffic.burst_fraction = 0.25;
  base.traffic.burst_period_s = 0.05;
  base.scheduler.max_in_flight = 4;

  FleetConfig cfg = FleetConfig::homogeneous(
      base, 3, BalancerPolicy::kJoinShortestQueue);
  cfg.autoscale.enabled = true;
  cfg.autoscale.policy = ScalePolicy::kQueueDepth;
  cfg.autoscale.min_replicas = 1;
  cfg.autoscale.max_replicas = 3;
  cfg.autoscale.eval_interval_ms = 2.0;
  cfg.autoscale.queue_high = 1.0;
  cfg.autoscale.queue_low = 0.25;
  cfg.autoscale.up_evals = 1;
  cfg.autoscale.down_evals = 2;
  cfg.autoscale.cooldown_evals = 1;
  return cfg;
}

/// Asserts the tiling identity plus the event log's structural invariants
/// on a finalized observer: timestamps are globally nondecreasing (the
/// engine's event order), every request's lifecycle is well-ordered
/// (arrive first; admit before any chunk; first-token before decode;
/// finish/reject terminal), and replica indices are in range.
void check_observer_invariants(const Observer& obs) {
  ASSERT_TRUE(obs.finalized());
  // Tiling: per replica, the category totals sum to the makespan exactly.
  for (std::uint32_t r = 0; r < obs.replicas(); ++r) {
    sim::Cycles total = 0;
    for (const auto& [cat, cycles] : obs.breakdown(r)) total += cycles;
    EXPECT_EQ(total, obs.makespan()) << "replica " << r;
    EXPECT_EQ(obs.replica_trace(r).grand_total(), obs.makespan());
  }
  // Event-log ordering.
  sim::Cycles prev = 0;
  struct PerRequest {
    bool arrived = false, admitted = false, first_token = false;
    bool terminal = false;
    sim::Cycles arrive_at = 0, admit_at = 0, ttft_at = 0, end_at = 0;
  };
  std::map<std::uint32_t, PerRequest> reqs;
  for (const ObservedEvent& e : obs.events()) {
    EXPECT_GE(e.at, prev) << "event log must follow engine time";
    prev = e.at;
    EXPECT_LT(e.replica, obs.replicas());
    if (e.request == kNoRequest) {
      EXPECT_TRUE(e.kind == LifecycleEvent::kScaleUp ||
                  e.kind == LifecycleEvent::kScaleDown ||
                  e.kind == LifecycleEvent::kDrain);
      continue;
    }
    PerRequest& r = reqs[e.request];
    EXPECT_FALSE(r.terminal) << "events after finish/reject, request "
                             << e.request;
    switch (e.kind) {
      case LifecycleEvent::kRoute:
        break;  // fleet-level routing precedes arrival at the replica
      case LifecycleEvent::kArrive:
        EXPECT_FALSE(r.arrived);
        r.arrived = true;
        r.arrive_at = e.at;
        break;
      case LifecycleEvent::kAdmit:
        EXPECT_TRUE(r.arrived);
        r.admitted = true;
        r.admit_at = e.at;
        EXPECT_GE(e.at, r.arrive_at);
        break;
      case LifecycleEvent::kReject:
        EXPECT_TRUE(r.arrived);
        r.terminal = true;
        break;
      case LifecycleEvent::kFirstChunk:
      case LifecycleEvent::kChunk:
      case LifecycleEvent::kRecomputeStart:
      case LifecycleEvent::kRecomputeEnd:
      case LifecycleEvent::kPreempt:
        EXPECT_TRUE(r.admitted);
        break;
      case LifecycleEvent::kFirstToken:
        EXPECT_TRUE(r.admitted);
        EXPECT_FALSE(r.first_token);
        r.first_token = true;
        r.ttft_at = e.at;
        EXPECT_GE(e.at, r.admit_at);
        break;
      case LifecycleEvent::kDecode:
        EXPECT_TRUE(r.first_token);
        break;
      case LifecycleEvent::kFinish:
        EXPECT_TRUE(r.first_token);
        r.terminal = true;
        r.end_at = e.at;
        EXPECT_GE(e.at, r.ttft_at);
        break;
      default:
        ADD_FAILURE() << "unexpected fleet-scoped kind on request event";
    }
  }
  for (const auto& [id, r] : reqs) {
    EXPECT_TRUE(r.terminal) << "request " << id << " never finished";
  }
}

std::uint64_t count_kind(const Observer& obs, LifecycleEvent kind) {
  std::uint64_t n = 0;
  for (const ObservedEvent& e : obs.events()) n += (e.kind == kind) ? 1 : 0;
  return n;
}

// ---------------------------------------------- Observer construction

TEST(ObserverTest, ConstructorValidatesArguments) {
  EXPECT_THROW(Observer(0, 285e6), std::invalid_argument);
  EXPECT_THROW(Observer(1, 0.0), std::invalid_argument);
  EXPECT_THROW(Observer(1, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(Observer(4, 285e6));
}

TEST(ObserverTest, LifecycleEventNamesAreStable) {
  EXPECT_STREQ(lifecycle_event_name(LifecycleEvent::kRoute), "route");
  EXPECT_STREQ(lifecycle_event_name(LifecycleEvent::kFirstToken),
               "first-token");
  EXPECT_STREQ(lifecycle_event_name(LifecycleEvent::kRecomputeStart),
               "recompute-start");
  EXPECT_STREQ(lifecycle_event_name(LifecycleEvent::kScaleDown),
               "scale-down");
}

TEST(ObserverTest, WaitPairingMisuseThrows) {
  Observer obs(1, 285e6);
  EXPECT_THROW(obs.end_wait(0, 10), std::logic_error);  // no open wait
  obs.begin_wait(0, category::kSchedulerIdle, 0);
  EXPECT_THROW(obs.begin_wait(0, category::kKvStall, 5), std::logic_error);
  obs.end_wait(0, 10);
  EXPECT_NO_THROW(obs.begin_wait(0, category::kKvStall, 10));
}

TEST(ObserverTest, ExportBeforeFinalizeThrows) {
  Observer obs(1, 285e6);
  std::ostringstream os;
  EXPECT_THROW(obs.write_chrome_trace(os), std::logic_error);
  EXPECT_THROW(obs.write_prometheus(os), std::logic_error);
  obs.finalize(0);
  EXPECT_NO_THROW(obs.write_chrome_trace(os));
  EXPECT_THROW(obs.finalize(0), std::logic_error);  // single-use
}

TEST(ObserverTest, FinalizeAssertsTheTilingIdentity) {
  Observer obs(1, 285e6);
  obs.add_span(0, category::kDecode, 0, 50);  // 50-cycle gap to makespan...
  EXPECT_THROW(obs.finalize(100), std::logic_error);
  Observer ok(1, 285e6);
  ok.add_span(0, category::kDecode, 0, 50);
  ok.mark_exit(0, 50);  // ...unless the tail is accounted as drain
  ok.finalize(100);
  EXPECT_EQ(ok.breakdown(0).at(category::kDrain), 50u);
}

// ------------------------------------- Observed runs and the tiling law

TEST(ObserveRunTest, ObservedRunLeavesMetricsUntouched) {
  const ServingConfig cfg = base_config();
  const core::StepCostModel costs(cfg.arch, cfg.model,
                                  cfg.cost_probe_stride);
  const FleetMetrics plain = ServingSim(cfg, costs).run();
  Observer obs(1, cfg.arch.frequency_hz);
  const FleetMetrics observed = ServingSim(cfg, costs).run(&obs);
  // Bit-identical, not approximately equal: observation is pure
  // bookkeeping, it must not perturb the simulation.
  EXPECT_EQ(plain.completed, observed.completed);
  EXPECT_EQ(plain.rejected, observed.rejected);
  EXPECT_EQ(plain.duration_s, observed.duration_s);
  EXPECT_EQ(plain.ttft_ms.p99, observed.ttft_ms.p99);
  EXPECT_EQ(plain.e2e_ms.mean, observed.e2e_ms.mean);
  EXPECT_EQ(plain.kv_stall_events, observed.kv_stall_events);
}

TEST(ObserveRunTest, TilingHoldsAcrossPolicyMatrix) {
  for (const BatchPolicy policy :
       {BatchPolicy::kPrefillPriority, BatchPolicy::kDecodePriority,
        BatchPolicy::kChunkedMixed}) {
    ServingConfig cfg = base_config();
    cfg.scheduler.policy = policy;
    if (policy == BatchPolicy::kChunkedMixed) {
      cfg.scheduler.max_tokens_per_iter = 16;
    }
    Observer obs(1, cfg.arch.frequency_hz);
    const FleetMetrics m = ServingSim(cfg).run(&obs);
    check_observer_invariants(obs);
    EXPECT_GT(obs.makespan(), 0u);
    EXPECT_EQ(count_kind(obs, LifecycleEvent::kFinish), m.completed);
    EXPECT_EQ(count_kind(obs, LifecycleEvent::kReject), m.rejected);
    EXPECT_EQ(count_kind(obs, LifecycleEvent::kArrive), m.offered);
  }
}

TEST(ObserveRunTest, PreemptionEventsAndRecomputeCyclesAppear) {
  const ServingConfig cfg = preempting_config();
  Observer obs(1, cfg.arch.frequency_hz);
  const FleetMetrics m = ServingSim(cfg).run(&obs);
  check_observer_invariants(obs);
  ASSERT_GT(m.preemptions, 0u);  // the config must exercise the pool limit
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kPreempt), m.preemptions);
  // Every preemption implies a recovery: recompute-start events and
  // recompute cycles in the breakdown.
  EXPECT_GT(count_kind(obs, LifecycleEvent::kRecomputeStart), 0u);
  EXPECT_GT(obs.breakdown(0).at(category::kRecompute), 0u);
}

TEST(ObserveRunTest, FleetRunTilesEveryReplica) {
  ServingConfig base = base_config();
  base.traffic.num_requests = 48;
  const FleetConfig cfg = FleetConfig::homogeneous(
      base, 3, BalancerPolicy::kJoinShortestQueue);
  Observer obs(3, base.arch.frequency_hz);
  const FleetResult fr = FleetSim(cfg).run(&obs);
  check_observer_invariants(obs);
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kRoute), fr.fleet.offered);
  // A static fleet records no scale traffic.
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kScaleUp), 0u);
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kScaleDown), 0u);
}

TEST(ObserveRunTest, AutoscaledRunRecordsScaleAndDrainEvents) {
  const FleetConfig cfg = autoscaled_config();
  Observer obs(cfg.autoscale.max_replicas,
               cfg.replicas.front().arch.frequency_hz);
  const FleetResult fr = FleetSim(cfg).run(&obs);
  check_observer_invariants(obs);
  ASSERT_FALSE(fr.scale_events.empty());  // the burst must move the fleet
  std::uint64_t ups = 0, downs = 0;
  for (const ScaleEvent& e : fr.scale_events) (e.to > e.from ? ups : downs)++;
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kScaleUp), ups);
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kScaleDown), downs);
  // Every scale-down drains the deactivated replica.
  EXPECT_EQ(count_kind(obs, LifecycleEvent::kDrain), downs);
}

TEST(ObserveRunTest, RunRejectsMismatchedObserverWidth) {
  const ServingConfig cfg = base_config();
  Observer wide(2, cfg.arch.frequency_hz);
  EXPECT_THROW(ServingSim(cfg).run(&wide), std::invalid_argument);
  const FleetConfig fleet = FleetConfig::homogeneous(
      base_config(), 3, BalancerPolicy::kRoundRobin);
  Observer narrow(2, cfg.arch.frequency_hz);
  EXPECT_THROW(FleetSim(fleet).run(&narrow), std::invalid_argument);
}

// ------------------------------------------------- Byte-stable exports

TEST(ObserveExportTest, RepeatedRunsExportIdenticalBytes) {
  const ServingConfig cfg = preempting_config();
  const auto run_and_export = [&cfg](std::string& trace, std::string& prom) {
    Observer obs(1, cfg.arch.frequency_hz);
    ServingSim(cfg).run(&obs);
    std::ostringstream t, p;
    obs.write_chrome_trace(t);
    obs.write_prometheus(p);
    trace = t.str();
    prom = p.str();
  };
  std::string trace_a, prom_a, trace_b, prom_b;
  run_and_export(trace_a, prom_a);
  run_and_export(trace_b, prom_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(prom_a, prom_b);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_FALSE(prom_a.empty());
}

TEST(ObserveExportTest, ChromeTraceCarriesLifecycleAndBreakdown) {
  const ServingConfig cfg = preempting_config();
  Observer obs(1, cfg.arch.frequency_hz);
  ServingSim(cfg).run(&obs);
  std::ostringstream os;
  obs.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"simulated-cycles\""), std::string::npos);
  for (const char* cat : {"decode", "recompute", "host-sync"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(cat) + "\""),
              std::string::npos)
        << cat;
  }
  // Async request spans and preemption instants made it through.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"preempt\""), std::string::npos);
}

TEST(ObserveExportTest, PrometheusEmitsAllCategoriesForEveryReplica) {
  ServingConfig base = base_config();
  const FleetConfig cfg =
      FleetConfig::homogeneous(base, 2, BalancerPolicy::kRoundRobin);
  Observer obs(2, base.arch.frequency_hz);
  FleetSim(cfg).run(&obs);
  std::ostringstream os;
  obs.write_prometheus(os);
  const std::string text = os.str();
  // The per-category counter line set is complete even for categories that
  // never accrued cycles, so scrape-side dashboards see a stable schema.
  for (std::uint32_t r = 0; r < 2; ++r) {
    for (const char* cat : kCategories) {
      const std::string line = "looplynx_replica_cycles_total{replica=\"" +
                               std::to_string(r) + "\",category=\"" + cat +
                               "\"}";
      EXPECT_NE(text.find(line), std::string::npos) << line;
    }
  }
  EXPECT_NE(text.find("# TYPE looplynx_requests_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("looplynx_ttft_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

// ---------------------------------------------- Host-layer exposure

class ObserveHostTest : public ::testing::Test {
 protected:
  static quant::Gpt2Int8Weights make_weights() {
    model::ModelConfig cfg = model::cosim_config();
    cfg.vocab_size = 512;
    const auto w = model::Gpt2Weights::random(cfg, 77);
    util::Rng rng(78);
    std::vector<std::uint32_t> calib(24);
    for (auto& t : calib) {
      t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
    }
    return quant::Gpt2Int8Weights::build_with_calibration(w, calib);
  }
};

TEST_F(ObserveHostTest, FlushObservedFillsTheBreakdown) {
  const auto weights = make_weights();
  host::Host host(weights, host::Tokenizer::byte_level(),
                  core::ArchConfig::one_node());
  host::ServeRequest req;
  req.prompt = "loop";
  req.max_new_tokens = 6;
  host.submit(req);
  host.submit(req);
  const std::vector<host::ServeResult> results = host.flush_observed();
  ASSERT_EQ(results.size(), 2u);
  for (const host::ServeResult& r : results) {
    ASSERT_FALSE(r.replica_breakdown_ms.empty());
    double total_ms = 0.0;
    for (const auto& [cat, ms] : r.replica_breakdown_ms) {
      EXPECT_GE(ms, 0.0) << cat;
      total_ms += ms;
    }
    EXPECT_GT(total_ms, 0.0);  // categories tile the replica's makespan
  }
  // The plain flush leaves the breakdown empty (observer never built).
  host.submit(req);
  const std::vector<host::ServeResult> plain = host.flush();
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_TRUE(plain[0].replica_breakdown_ms.empty());
}

// ------------------------------------------------------- CLI plumbing

util::Cli make_cli(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "test");
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return util::Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(ObserveCliTest, ExportFlagsParseAndValidate) {
  const SchedulerCliOptions off = parse_scheduler_cli(make_cli({}));
  EXPECT_TRUE(off.trace_out.empty());
  EXPECT_TRUE(off.metrics_out.empty());
  EXPECT_FALSE(off.observed());

  const SchedulerCliOptions on = parse_scheduler_cli(make_cli(
      {"--trace-out=/tmp/t.json", "--metrics-out=/tmp/m.prom"}));
  EXPECT_EQ(on.trace_out, "/tmp/t.json");
  EXPECT_EQ(on.metrics_out, "/tmp/m.prom");
  EXPECT_TRUE(on.observed());

  // A bare flag (no path) is a usage error, not a silent no-op.
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--trace-out"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--metrics-out"})),
               std::invalid_argument);
}

TEST(ObserveCliTest, WriteExportsRejectsUnwritablePaths) {
  Observer obs(1, 285e6);
  obs.finalize(0);
  EXPECT_NO_THROW(write_exports(obs, "", ""));  // both disabled: no-op
  EXPECT_THROW(
      write_exports(obs, "/nonexistent-dir/trace.json", ""),
      std::runtime_error);
}

}  // namespace
}  // namespace looplynx::serve
