// Design-space exploration over LoopLynx architecture parameters.
//
// The paper fixes one operating point (8 channels x 32 MACs, 2 KV channels,
// 2 nodes per U50). This module searches the surrounding space — channels,
// attention lanes, KV channels, block granularity — subject to the SLR
// resource budget, and ranks candidates by simulated latency or efficiency.
// It automates the sizing argument implicit in the paper's Section III-D
// and powers the `dse_explorer` example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/energy.hpp"
#include "core/resource_model.hpp"
#include "core/system.hpp"
#include "model/config.hpp"

namespace looplynx::core {

struct DseSpace {
  std::vector<std::uint32_t> n_channel{4, 8, 12, 16};
  std::vector<std::uint32_t> kv_channels{1, 2, 4};
  std::vector<std::uint32_t> score_lanes{32, 64, 128};
  std::vector<std::uint32_t> mp_block_rows{64, 128, 256};
};

struct DseObjective {
  std::uint32_t prefill = 32;
  std::uint32_t decode = 128;
  std::uint32_t token_sample_stride = 16;
  /// Weight of energy in the figure of merit: 0 = pure latency,
  /// 1 = pure energy-per-token.
  double energy_weight = 0.0;
};

struct DseCandidate {
  ArchConfig arch;
  double avg_token_ms = 0;
  double tokens_per_joule = 0;
  double slr_utilization = 0;  // worst-resource fraction of one SLR
  bool fits = false;
  double figure_of_merit = 0;  // lower is better

  std::string describe() const;
};

class DesignSpaceExplorer {
 public:
  DesignSpaceExplorer(model::ModelConfig model, ArchConfig base,
                      DseSpace space = {}, DseObjective objective = {});

  /// Evaluates the full cross product; returns candidates sorted by figure
  /// of merit (feasible first). Infeasible points carry fits == false and
  /// are not simulated.
  std::vector<DseCandidate> explore() const;

  /// The best feasible candidate (throws if none fits).
  DseCandidate best() const;

  /// Number of points in the space.
  std::size_t space_size() const;

 private:
  DseCandidate evaluate(const ArchConfig& arch) const;

  model::ModelConfig model_;
  ArchConfig base_;
  DseSpace space_;
  DseObjective objective_;
};

}  // namespace looplynx::core
